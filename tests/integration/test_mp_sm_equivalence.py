"""Differential testing: each MP/SM pair computes the same answer.

The paper's methodology rests on the two members of each pair being
"equivalent programs"; here equivalence is checked on the *numbers*,
not the cycle counts. Direct-method apps must agree exactly:

* **Gauss** — identical elimination order, so the solution vector is
  bit-identical across machines.
* **LCP** — identical sweep order and step count, bit-identical z.
* **EM3D** — the same stencil, but each machine gathers neighbor
  values in a different order, so sums differ by float rounding only.

**MSE** is *asynchronous* Jacobi with scheduled exchange: the MP
version folds in deliberately stale remote solutions (the paper's
communication-reducing schedule) while the SM version reads current
shared memory. Fixed-iteration iterates therefore differ, but both
contract to the same fixed point — asserted by the gap shrinking
geometrically as iterations grow.
"""

import numpy as np

from repro.apps.em3d.common import Em3dConfig
from repro.apps.em3d.mp import run_em3d_mp
from repro.apps.em3d.sm import run_em3d_sm
from repro.apps.gauss.common import GaussConfig
from repro.apps.gauss.mp import run_gauss_mp
from repro.apps.gauss.sm import run_gauss_sm
from repro.apps.lcp.common import LcpConfig
from repro.apps.lcp.mp import run_lcp_mp
from repro.apps.lcp.sm import run_lcp_sm
from repro.apps.mse.common import MseConfig
from repro.apps.mse.mp import run_mse_mp
from repro.apps.mse.sm import run_mse_sm
from repro.arch.params import MachineParams
from repro.mp.machine import MpMachine
from repro.sm.machine import SmMachine

PARAMS = MachineParams.paper(num_processors=4)


def test_gauss_solutions_identical():
    config = GaussConfig.small(n=24)
    _, x_mp = run_gauss_mp(MpMachine(PARAMS, seed=6), config)
    _, x_sm = run_gauss_sm(SmMachine(PARAMS, seed=6), config)
    assert np.array_equal(np.asarray(x_mp), np.asarray(x_sm))


def test_lcp_solutions_identical():
    config = LcpConfig.small(n=32, tolerance=1e-4)
    _, z_mp, steps_mp = run_lcp_mp(MpMachine(PARAMS, seed=6), config)
    _, z_sm, steps_sm = run_lcp_sm(SmMachine(PARAMS, seed=6), config)
    assert steps_mp == steps_sm
    assert np.array_equal(np.asarray(z_mp), np.asarray(z_sm))


def test_em3d_fields_agree_to_rounding():
    config = Em3dConfig.small(nodes_per_proc=16, degree=3, iterations=3)
    _, e_mp, h_mp = run_em3d_mp(MpMachine(PARAMS, seed=6), config)
    _, e_sm, h_sm = run_em3d_sm(SmMachine(PARAMS, seed=6), config)
    np.testing.assert_allclose(e_mp, e_sm, rtol=1e-12, atol=1e-15)
    np.testing.assert_allclose(h_mp, h_sm, rtol=1e-12, atol=1e-15)


def _mse_gap(iterations):
    config = MseConfig.small(bodies=8, elements_per_body=3,
                             iterations=iterations)
    _, sol_mp = run_mse_mp(MpMachine(PARAMS, seed=6), config)
    _, sol_sm = run_mse_sm(SmMachine(PARAMS, seed=6), config)
    sol_mp, sol_sm = np.asarray(sol_mp), np.asarray(sol_sm)
    return float(np.max(np.abs(sol_mp - sol_sm)) / np.max(np.abs(sol_sm)))


def test_mse_converges_to_the_same_fixed_point():
    gap_short = _mse_gap(iterations=8)
    gap_long = _mse_gap(iterations=16)
    assert gap_long < 1e-5
    # Geometric contraction: more iterations close the staleness gap.
    assert gap_long < gap_short / 10
