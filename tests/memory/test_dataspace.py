"""Unit tests for regions, layout, and home policies."""

import numpy as np
import pytest

from repro.memory.dataspace import DataSpace, HomePolicy, Segment


def make_space(nodes=4, block=32):
    return DataSpace(num_nodes=nodes, block_bytes=block)


def test_private_region_basics():
    space = make_space()
    region = space.alloc_private("buf", owner=2, shape=10, dtype=np.float64)
    assert region.segment is Segment.PRIVATE
    assert region.nbytes == 80
    assert region.base % 32 == 0
    assert region.np.shape == (10,)


def test_regions_do_not_overlap():
    space = make_space()
    a = space.alloc_private("a", owner=0, shape=5)
    b = space.alloc_private("b", owner=0, shape=5)
    assert a.end <= b.base


def test_segments_are_disjoint():
    space = make_space()
    private = space.alloc_private("p", owner=1, shape=4)
    shared = space.alloc_shared("s", owner=1, shape=4)
    ranges = sorted([(private.base, private.end), (shared.base, shared.end)])
    assert ranges[0][1] <= ranges[1][0]


def test_duplicate_name_rejected():
    space = make_space()
    space.alloc_private("x", owner=0, shape=1)
    with pytest.raises(ValueError):
        space.alloc_private("x", owner=1, shape=1)


def test_bad_owner_rejected():
    space = make_space(nodes=2)
    with pytest.raises(ValueError):
        space.alloc_private("x", owner=2, shape=1)


def test_addr_of_and_range_of():
    space = make_space()
    region = space.alloc_private("v", owner=0, shape=8, dtype=np.float64)
    assert region.addr_of(0) == region.base
    assert region.addr_of(3) == region.base + 24
    r = region.range_of(2, 6)
    assert r.start == region.base + 16
    assert r.length == 32
    with pytest.raises(IndexError):
        region.addr_of(8)
    with pytest.raises(IndexError):
        region.range_of(5, 3)


def test_round_robin_homes_interleave_blocks():
    space = make_space(nodes=4, block=32)
    region = space.alloc_shared("g", owner=0, shape=16, dtype=np.float64)  # 4 blocks
    homes = [region.home_of_block(region.base + i * 32) for i in range(4)]
    assert homes == [0, 1, 2, 3]


def test_local_policy_homes_on_owner():
    space = make_space(nodes=4)
    region = space.alloc_shared(
        "g", owner=3, shape=16, policy=HomePolicy.LOCAL
    )
    homes = {region.home_of_block(region.base + i * 32) for i in range(4)}
    assert homes == {3}


def test_private_regions_home_on_owner():
    space = make_space(nodes=4)
    region = space.alloc_private("p", owner=2, shape=16)
    assert region.home_of_block(region.base) == 2


def test_home_of_foreign_block_rejected():
    space = make_space()
    region = space.alloc_shared("g", owner=0, shape=4)
    with pytest.raises(ValueError):
        region.home_of_block(region.end + 320)


def test_block_addrs_of_indices_unique_sorted():
    space = make_space(nodes=2, block=32)
    region = space.alloc_shared("g", owner=0, shape=32, dtype=np.float64)
    # Elements 0..3 share block 0; element 4 starts block 1.
    blocks = region.block_addrs_of_indices([3, 0, 4, 1])
    assert list(blocks) == [region.base, region.base + 32]


def test_region_at_lookup():
    space = make_space()
    region = space.alloc_private("p", owner=0, shape=4)
    assert space.region_at(region.base + 8) is region
    assert space.region_at(region.end + 12345) is None


def test_fill_value():
    space = make_space()
    region = space.alloc_private("p", owner=0, shape=4, fill=7.5)
    assert (region.np == 7.5).all()
