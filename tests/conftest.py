"""Shared test fixtures."""

import pytest


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Point the on-disk result cache at a per-test directory.

    Keeps test runs from reading or polluting a developer's
    ``.repro_cache/`` in the working directory.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro_cache"))
    yield
