"""Tests for MCS locks and combining reductions on the SM machine."""

import numpy as np

from repro.memory.dataspace import HomePolicy
from repro.stats.categories import SmCat


def test_lock_mutual_exclusion(machine4):
    """A lock-protected counter increments without lost updates."""
    lock = machine4.make_lock("l")
    counter = machine4.contexts[0].gmalloc("counter", 4, policy=HomePolicy.LOCAL)
    trace = []

    def program(ctx):
        for _ in range(3):
            yield from lock.acquire(ctx)
            values = yield from ctx.read(counter, 0, 1)
            old = float(values[0])
            trace.append(("in", ctx.pid, ctx.engine.now))
            yield from ctx.compute(50)
            yield from ctx.write(counter, 0, values=[old + 1.0])
            trace.append(("out", ctx.pid, ctx.engine.now))
            yield from lock.release(ctx)

    machine4.run(program)
    assert counter.np[0] == 12.0  # 4 procs x 3 increments


def test_critical_sections_do_not_overlap(machine4):
    lock = machine4.make_lock("l")
    intervals = []

    def program(ctx):
        for _ in range(2):
            yield from lock.acquire(ctx)
            start = ctx.engine.now
            yield from ctx.compute(100)
            intervals.append((start, ctx.engine.now))
            yield from lock.release(ctx)

    machine4.run(program)
    intervals.sort()
    for (s1, e1), (s2, _e2) in zip(intervals, intervals[1:]):
        assert s2 >= e1, f"critical sections overlap: {(s1, e1)} vs {(s2, _e2)}"


def test_lock_time_lands_in_lock_category(machine4):
    lock = machine4.make_lock("l")

    def program(ctx):
        yield from lock.acquire(ctx)
        yield from ctx.compute(500)  # plain compute inside the section
        yield from lock.release(ctx)

    result = machine4.run(program)
    board = result.board
    assert board.mean_cycles(SmCat.LOCK) > 0
    # The critical-section body itself is still Computation.
    assert board.mean_cycles(SmCat.COMPUTE) == 500
    assert result.board.total_count("lock_acquires") == 4


def test_contended_lock_spins_locally(machine8):
    """Waiters spin on their own cache block: traffic stays bounded.

    Each handoff should cost a handful of protocol messages, not
    continuous polling traffic proportional to waiting time.
    """
    lock = machine8.make_lock("l")

    def program(ctx):
        yield from lock.acquire(ctx)
        yield from ctx.compute(2000)  # long section => long waits
        yield from lock.release(ctx)

    result = machine8.run(program)
    # Total misses across procs: a handful per acquire/release, not
    # thousands from spinning.
    total_lock_misses = sum(
        p.counts.get("shared_misses_remote", 0)
        + p.counts.get("shared_misses_local", 0)
        + p.counts.get("write_faults", 0)
        for p in result.board.procs
    )
    assert total_lock_misses < 25 * 8


def add_pairs(a, b):
    return (a[0] + b[0], 0.0)


def test_reduction_sum(machine8):
    reduction = machine8.make_reduction("r")
    got = {}

    def program(ctx):
        result = yield from reduction.reduce(ctx, float(ctx.pid), add_pairs)
        got[ctx.pid] = result

    machine8.run(program)
    assert got[0] == (sum(range(8)), 0.0)
    assert all(got[p] is None for p in range(1, 8))


def test_allreduce_max_everywhere(machine8):
    reduction = machine8.make_reduction("r")
    got = {}

    def program(ctx):
        value = float((ctx.pid * 13) % 7)
        result = yield from reduction.allreduce(ctx, value, max, aux=float(ctx.pid))
        got[ctx.pid] = result

    machine8.run(program)
    expected = max((float((p * 13) % 7), float(p)) for p in range(8))
    assert set(got.values()) == {expected}


def test_argmax_reduction_carries_index(machine8):
    """The Gauss pivot pattern: max value plus the owning row index."""
    reduction = machine8.make_reduction("pivot")
    got = {}

    def program(ctx):
        value = float(10 - ctx.pid) if ctx.pid == 5 else float(ctx.pid)
        result = yield from reduction.allreduce(ctx, value, max, aux=ctx.pid * 100)
        got[ctx.pid] = result

    machine8.run(program)
    assert set(got.values()) == {(7.0, 700.0)}


def test_successive_allreduces(machine8):
    reduction = machine8.make_reduction("r")
    got = {}

    def program(ctx):
        results = []
        for round_ in range(4):
            value = float(ctx.pid + round_ * 100)
            result = yield from reduction.allreduce(ctx, value, max)
            results.append(result[0])
        got[ctx.pid] = results

    machine8.run(program)
    expected = [7.0, 107.0, 207.0, 307.0]
    for pid in range(8):
        assert got[pid] == expected


def test_reduction_charges_reduction_category(machine8):
    reduction = machine8.make_reduction("r")

    def program(ctx):
        yield from reduction.allreduce(ctx, 1.0, add_pairs)

    result = machine8.run(program)
    assert result.board.mean_cycles(SmCat.REDUCTION) > 0


def test_custom_context_reduction(machine4):
    reduction = machine4.make_reduction("conv", context="sync")

    def program(ctx):
        yield from reduction.allreduce(ctx, 1.0, add_pairs)

    result = machine4.run(program)
    assert result.board.mean_cycles(SmCat.SYNC_COMPUTE) > 0
    assert result.board.mean_cycles(SmCat.REDUCTION) == 0


def test_lock_handoff_is_fifo(machine8):
    """MCS fairness: the lock passes to waiters in arrival order.

    Contenders arrive 500 cycles apart while the first holder sits in a
    long critical section, so the queue order is unambiguous; each
    handoff must follow it exactly.
    """
    lock = machine8.make_lock("l")
    order = []

    def program(ctx):
        yield from ctx.compute(500 * ctx.pid + 10)
        yield from lock.acquire(ctx)
        order.append(ctx.pid)
        yield from ctx.compute(3000)
        yield from lock.release(ctx)

    machine8.run(program)
    assert order == list(range(8))


def test_lock_handoff_follows_arrival_not_pid(machine8):
    """Reversing the stagger reverses the handoff order: the queue
    tracks arrival, with no bias toward low processor ids."""
    lock = machine8.make_lock("l")
    order = []

    def program(ctx):
        yield from ctx.compute(500 * (7 - ctx.pid) + 10)
        yield from lock.acquire(ctx)
        order.append(ctx.pid)
        yield from ctx.compute(3000)
        yield from lock.release(ctx)

    machine8.run(program)
    assert order == list(range(7, -1, -1))
