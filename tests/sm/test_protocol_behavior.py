"""Directory-protocol behavior: contention, fetches, evictions."""

import numpy as np
import pytest

from repro.arch.params import MachineParams
from repro.memory.dataspace import HomePolicy
from repro.sm.machine import DeadlockError, SmMachine
from repro.sm.protocol import DirState
from repro.stats.categories import SmCat


def test_dirty_fetch_on_remote_read(machine2):
    """Reading a block another processor holds dirty triggers a fetch."""

    def program(ctx):
        if ctx.pid == 0:
            region = ctx.gmalloc("g", 4, policy=HomePolicy.LOCAL)
            yield from ctx.write(region, 0, values=[5.0])  # dirty at p0
        yield from ctx.barrier()
        if ctx.pid == 1:
            region = ctx.machine.regions[0]
            values = yield from ctx.read(region, 0, 1)
            assert values[0] == 5.0

    result = machine2.run(program)
    assert machine2.cache_ctrls[0].fetches_serviced == 1
    p1 = result.board.procs[1]
    # The fetch adds two more message legs: miss costs well over idle.
    assert p1.cycles[SmCat.SHARED_MISS] > 300


def test_getx_invalidates_all_sharers(machine4):
    def program(ctx):
        if ctx.pid == 0:
            region = ctx.gmalloc("g", 4, policy=HomePolicy.LOCAL)
        yield from ctx.barrier()
        region = ctx.machine.regions[0]
        yield from ctx.read(region, 0, 1)  # everyone shares
        yield from ctx.barrier()
        if ctx.pid == 3:
            yield from ctx.write(region, 0, values=[1.0])
        yield from ctx.barrier()

    result = machine4.run(program)
    total_invals = sum(
        p.counts.get("invalidations_received", 0) for p in result.board.procs
    )
    assert total_invals == 3  # everyone but the writer
    writer = result.board.procs[3]
    assert writer.counts["write_faults"] == 1
    # Writer's control bytes include 3 INV + 3 ACK round trips.
    assert writer.counts["control_bytes"] >= 3 * 80


def test_directory_serializes_conflicting_writers(machine4):
    """Concurrent writers to one block are serialized; all updates land."""
    def program(ctx):
        if ctx.pid == 0:
            ctx.gmalloc("g", 4, policy=HomePolicy.LOCAL)
        yield from ctx.barrier()
        region = ctx.machine.regions[0]
        for _ in range(3):
            values = yield from ctx.read(region, 0, 1)
            yield from ctx.write(region, 0, values=[float(values[0]) + 1.0])

    machine4.run(program)
    region = machine4.regions[0]
    # Races may lose read-modify-write increments (no lock), but the
    # protocol itself must keep a coherent final state in [4, 12].
    assert 1.0 <= region.np[0] <= 12.0
    entry_states = [
        e.state for d in machine4.directories for e in d.entries.values()
    ]
    assert all(not d.entries[b].busy for d in machine4.directories for b in d.entries)
    assert DirState.EXCLUSIVE in entry_states or DirState.SHARED in entry_states


def test_directory_contention_measured(machine8):
    """Eight readers of one home node's data queue at its directory."""

    def program(ctx):
        if ctx.pid == 0:
            ctx.gmalloc("g", 64, policy=HomePolicy.LOCAL)  # 16 blocks at home 0
        yield from ctx.barrier()
        region = ctx.machine.regions[0]
        yield from ctx.read(region)

    machine8.run(program)
    assert machine8.directory_contention() > 0
    directory = machine8.directories[0]
    assert directory.requests_served >= 8 * 16
    assert directory.mean_queue_delay() > 0


def test_capacity_eviction_writes_back_dirty_shared():
    """Dirty shared lines displaced by capacity pressure write back."""
    params = MachineParams.paper(num_processors=2).with_cache_bytes(1024)
    machine = SmMachine(params, seed=5)

    def program(ctx):
        if ctx.pid == 0:
            region = ctx.gmalloc("g", 1024, policy=HomePolicy.LOCAL)  # 8 KB
            yield from ctx.write(region, 0, values=np.ones(1024))
            # Re-walk to force more evictions.
            yield from ctx.read(region)
        else:
            yield from ctx.compute(1)

    result = machine.run(program)
    p0 = result.board.procs[0]
    assert p0.counts.get("writebacks", 0) > 0


def test_stale_sharer_invalidation_is_harmless():
    """A silently evicted sharer still gets (and acks) stale INVs."""
    params = MachineParams.paper(num_processors=2).with_cache_bytes(1024)
    machine = SmMachine(params, seed=5)

    def program(ctx):
        if ctx.pid == 0:
            ctx.gmalloc("g", 4, policy=HomePolicy.LOCAL)
            ctx.gmalloc("filler", 2048, policy=HomePolicy.LOCAL)
        yield from ctx.barrier()
        target, filler = ctx.machine.regions[0], ctx.machine.regions[1]
        if ctx.pid == 1:
            yield from ctx.read(target, 0, 1)  # become a sharer
            yield from ctx.read(filler)  # churn the tiny cache: evict it
        yield from ctx.barrier()
        if ctx.pid == 0:
            yield from ctx.write(target, 0, values=[1.0])  # INV to stale sharer
        yield from ctx.barrier()

    machine.run(program)  # must not raise


def test_deadlock_detection(machine2):
    def program(ctx):
        if ctx.pid == 0:
            yield from ctx.wait_create()  # never created

    with pytest.raises(DeadlockError):
        machine2.run(program)


def test_spin_until_wakes_on_invalidation(machine2):
    log = []

    def program(ctx):
        if ctx.pid == 0:
            region = ctx.gmalloc("flag", 4, policy=HomePolicy.LOCAL)
        yield from ctx.barrier()
        region = ctx.machine.regions[0]
        if ctx.pid == 1:
            value = yield from ctx.spin_until(region, 0, lambda v: v == 42.0)
            log.append((value, ctx.engine.now))
        else:
            yield from ctx.compute(5000)
            yield from ctx.write(region, 0, values=[42.0])

    machine2.run(program)
    assert log and log[0][0] == 42.0
    assert log[0][1] >= 5000
