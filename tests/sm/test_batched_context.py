"""White-box tests of the batched backend's verdict memoization.

The differential suite proves the backends bit-identical end to end;
these tests pin the memo mechanics — verdicts are stamped with the
TLB/cache versions they were computed at, reused only while both stand,
and never recorded for outcomes that themselves changed line states.
"""

import pytest

from repro.sim.batch import BatchScript
from repro.sm.batched import BatchedSmContext


def test_machine_default_backend_is_batched(machine2):
    def program(ctx):
        assert isinstance(ctx, BatchedSmContext)
        yield from ctx.compute(1)

    machine2.run(program)


def test_scalar_memo_populated_by_clean_fast_path(machine2):
    seen = {}

    def program(ctx):
        if ctx.pid == 0:
            buf = ctx.alloc_private("buf", 8)
            yield from ctx.read(buf, 0, 8)  # cold: misses, no memo
            assert not ctx._range_memo
            yield from ctx.read(buf, 0, 8)  # warm: clean verdict memoized
            assert (buf, 0, 8, False) in ctx._range_memo
            memo = ctx._range_memo[(buf, 0, 8, False)]
            seen["memo"] = list(memo)
            seen["versions"] = (ctx.tlb.version, ctx.cache.version)
            hits = (ctx.tlb.hits, ctx.cache.hits)
            yield from ctx.read(buf, 0, 8)  # memo hit commits hit counts
            seen["hit_delta"] = (ctx.tlb.hits - hits[0], ctx.cache.hits - hits[1])
        else:
            yield from ctx.compute(1)

    machine2.run(program)
    tlb_v, cache_v, npages, nblocks = seen["memo"]
    assert (tlb_v, cache_v) == seen["versions"]
    assert seen["hit_delta"] == (npages, nblocks)


def test_scalar_memo_invalidated_by_version_bump(machine2):
    def program(ctx):
        if ctx.pid == 0:
            buf = ctx.alloc_private("buf", 8)
            yield from ctx.read(buf, 0, 8)
            yield from ctx.read(buf, 0, 8)
            memo = ctx._range_memo[(buf, 0, 8, False)]
            assert memo[1] == ctx.cache.version
            # Any line-state change anywhere moves the cache version,
            # making every stored verdict stale.
            ctx.cache.flush()
            assert memo[1] != ctx.cache.version
        yield from ctx.compute(1)

    machine2.run(program)


def test_script_memos_filled_on_clean_runs(machine2):
    def program(ctx):
        if ctx.pid == 0:
            buf = ctx.alloc_private("buf", 16)
            script = BatchScript().read(buf, 0, 16).compute(5)
            yield from ctx.run_batch(script)  # cold read: no verdict yet
            assert script.memos is not None and len(script.memos) == 2
            assert script.memos[0] is None  # fallback path is never memoized
            assert script.memos[1] == 5  # compute cycles precomputed
            yield from ctx.run_batch(script)  # warm: verdict recorded
            assert script.memos[0] is not None
            first = list(script.memos[0])
            results = yield from ctx.run_batch(script)  # memo hit
            assert script.memos[0] == first
            assert len(results) == 1 and results[0].size == 16
        else:
            yield from ctx.compute(1)

    machine2.run(program)


def test_unified_signature_rejects_legacy_kwargs(machine2):
    def program(ctx):
        if ctx.pid == 0:
            buf = ctx.alloc_private("buf", 4)
            with pytest.raises(TypeError, match="did you mean 'start'"):
                yield from ctx.read(buf, lo=0)
        yield from ctx.compute(1)

    machine2.run(program)
