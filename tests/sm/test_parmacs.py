"""Tests for the parmacs macro facade."""

import numpy as np
import pytest

from repro.sm.parmacs import Parmacs


def test_g_malloc_allocates_shared(machine2):
    def program(ctx):
        macros = Parmacs(ctx)
        if ctx.pid == 0:
            region = macros.G_MALLOC("vec", 8, fill=2.0)
            assert region.segment.value == "shared"
            assert (region.np == 2.0).all()
        yield from macros.BARRIER()

    machine2.run(program)


def test_create_wait_create_pattern(machine4):
    order = []

    def program(ctx):
        macros = Parmacs(ctx)
        if ctx.pid == 0:
            yield from ctx.compute(500)
            order.append(("created", ctx.engine.now))
            macros.CREATE()
        else:
            yield from macros.WAIT_CREATE()
            order.append(("started", ctx.pid, ctx.engine.now))

    machine4.run(program)
    created_at = order[0][1]
    for entry in order[1:]:
        assert entry[2] >= created_at


def test_create_from_nonzero_processor_rejected(machine2):
    def program(ctx):
        macros = Parmacs(ctx)
        if ctx.pid == 1:
            macros.CREATE()
        yield from ctx.compute(1)

    with pytest.raises(Exception):
        machine2.run(program)


def test_lock_unlock_by_name(machine4):
    machine4.make_lock("guard")
    counter = machine4.contexts[0].gmalloc("counter", 4)

    def program(ctx):
        macros = Parmacs(ctx)
        yield from macros.LOCK("guard")
        values = yield from ctx.read(counter, 0, 1)
        yield from ctx.compute(20)
        yield from ctx.write(counter, 0, values=[float(values[0]) + 1.0])
        yield from macros.UNLOCK("guard")

    machine4.run(program)
    assert counter.np[0] == 4.0


def test_lock_by_unknown_name_rejected(machine2):
    def program(ctx):
        macros = Parmacs(ctx)
        yield from macros.LOCK("never-created")

    with pytest.raises(Exception):
        machine2.run(program)
