"""Machine-level semantics of the relaxed memory models.

Litmus shapes pin the cross-processor orderings (tests/check); these
tests pin the mechanics underneath: context selection, read-own-write
forwarding, fence drain, deferred visibility, and the create() release
deferral — on real machines, through the public program surface.
"""

import numpy as np
import pytest

from repro.arch.params import MachineParams
from repro.sm.api import SmContext
from repro.sm.batched import BatchedSmContext
from repro.sm.machine import SmMachine
from repro.sm.relaxed import RelaxedSmContext


def _machine(consistency, nprocs=2, backend="batched", seed=1):
    return SmMachine(
        MachineParams.paper(num_processors=nprocs),
        seed=seed,
        backend=backend,
        consistency=consistency,
    )


def test_context_selection_by_model_and_backend():
    """sc keeps the per-backend contexts; relaxed models force the
    scalar relaxed context on *both* backends (batched bulk steps
    assume SC visibility)."""
    assert type(_machine("sc").contexts[0]) is BatchedSmContext
    assert type(_machine("sc", backend="reference").contexts[0]) is SmContext
    for model in ("tso", "pc"):
        for backend in ("batched", "reference"):
            machine = _machine(model, backend=backend)
            assert type(machine.contexts[0]) is RelaxedSmContext


def test_unknown_consistency_rejected():
    with pytest.raises(ValueError, match="unknown consistency"):
        _machine("weak")


def test_read_own_write_forwarding():
    """A processor always sees its own stores, committed or not."""
    machine = _machine("tso")
    seen = {}

    def program(ctx):
        if ctx.pid == 0:
            region = ctx.gmalloc("x", 4)
            yield from ctx.write(region, 0, values=np.array([7.0]))
            # The store is (very likely) still buffered; the load must
            # forward it regardless.
            got = yield from ctx.read(region, 0, 1)
            seen["forwarded"] = float(got[0])
            seen["pending"] = len(ctx.store_buffer)
        else:
            yield from ctx.compute(1)
        yield from ctx.barrier()

    machine.run(program)
    assert seen["forwarded"] == 7.0
    assert seen["pending"] >= 1  # the value came from the buffer


def test_fence_drains_and_commits():
    """fence() returns only once the buffer is dry and memory holds the
    stored values."""
    machine = _machine("tso", nprocs=1)
    seen = {}

    def program(ctx):
        region = ctx.gmalloc("x", 4)
        yield from ctx.write(region, 0, values=np.array([3.0]))
        seen["before"] = float(region.np.reshape(-1)[0])
        yield from ctx.fence()
        seen["after"] = float(region.np.reshape(-1)[0])
        seen["pending"] = len(ctx.store_buffer)

    machine.run(program)
    assert seen["before"] == 0.0  # parked in the buffer, not in memory
    assert seen["after"] == 3.0
    assert seen["pending"] == 0


def test_sc_fence_is_free():
    """Under sc, fence() is a no-op returning without touching the
    engine — the sc path stays bit-identical to the pre-relaxation
    machine."""
    machine = _machine("sc", nprocs=1)
    times = {}

    def program(ctx):
        region = ctx.gmalloc("x", 4)
        yield from ctx.write(region, 0, values=np.array([1.0]))
        t0 = ctx.engine.now
        yield from ctx.fence()
        times["cost"] = ctx.engine.now - t0

    machine.run(program)
    assert times["cost"] == 0


def test_store_counters_and_drain_counts():
    machine = _machine("pc", nprocs=1)

    def program(ctx):
        region = ctx.gmalloc("x", 16)
        for i in range(4):
            yield from ctx.write(region, i, values=np.array([float(i)]))
        yield from ctx.write_scatter(region, [8, 9], 5.0)
        yield from ctx.fence()

    result = machine.run(program)
    board = result.board
    assert board.mean_count("sb_stores") == 5
    assert board.mean_count("sb_drains") == 5
    assert board.mean_count("fences") >= 1


def test_relaxed_runs_are_seed_deterministic():
    """Same seed, same simulation — the pc commit jitter comes from the
    machine's own seeded stream."""

    def program(ctx):
        region = ctx.machine.regions[0] if ctx.machine.regions else None
        if ctx.pid == 0 and region is None:
            region = ctx.gmalloc("x", 32)
        yield from ctx.barrier()
        region = ctx.machine.regions[0]
        for i in range(8):
            yield from ctx.write(
                region, (ctx.pid * 8 + i) % 32, values=np.array([float(i)])
            )
        yield from ctx.barrier()

    totals = []
    for _ in range(2):
        machine = _machine("pc", seed=42)
        result = machine.run(program)
        totals.append(
            (machine.engine.now, result.board.mean_count("sb_drains"))
        )
    assert totals[0] == totals[1]


def test_create_defers_until_init_stores_commit():
    """parmacs create() releases the other processors only once
    processor 0's initialization stores are visible."""
    machine = _machine("tso")
    seen = {}

    def program(ctx):
        if ctx.pid == 0:
            region = ctx.gmalloc("init", 4)
            yield from ctx.write(region, 0, values=np.array([9.0]))
            ctx.create()
            yield from ctx.barrier()
        else:
            yield from ctx.wait_create()
            got = yield from ctx.read(ctx.machine.regions[0], 0, 1)
            seen["read"] = float(got[0])
            yield from ctx.barrier()

    machine.run(program)
    assert seen["read"] == 9.0
