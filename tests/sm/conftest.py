"""Shared fixtures for shared-memory machine tests."""

import pytest

from repro.arch.params import MachineParams
from repro.sm.machine import SmMachine


@pytest.fixture
def machine2():
    return SmMachine(MachineParams.paper(num_processors=2), seed=11)


@pytest.fixture
def machine4():
    return SmMachine(MachineParams.paper(num_processors=4), seed=11)


@pytest.fixture
def machine8():
    return SmMachine(MachineParams.paper(num_processors=8), seed=11)
