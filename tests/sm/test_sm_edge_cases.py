"""Edge cases of the shared-memory machine surface and extensions."""

import numpy as np
import pytest

from repro.memory.dataspace import HomePolicy
from repro.stats.categories import SmCat


def test_atomic_on_private_region_rejected(machine2):
    def program(ctx):
        region = ctx.alloc_private("p", 4)
        yield from ctx.atomic_swap(region, 0, 1.0)

    with pytest.raises(Exception):
        machine2.run(program)


def test_atomic_cas_failure_leaves_value(machine2):
    def program(ctx):
        if ctx.pid == 0:
            region = ctx.gmalloc("g", 4, fill=7.0)
            swapped = yield from ctx.atomic_cas(region, 0, expected=3.0,
                                                new_value=9.0)
            assert swapped is False
            assert region.np[0] == 7.0
            swapped = yield from ctx.atomic_cas(region, 0, expected=7.0,
                                                new_value=9.0)
            assert swapped is True
            assert region.np[0] == 9.0
        else:
            yield from ctx.compute(1)

    machine2.run(program)


def test_repeated_atomic_swaps_hit_in_cache(machine2):
    """After gaining exclusivity, further swaps are protocol-free."""

    def program(ctx):
        if ctx.pid == 0:
            region = ctx.gmalloc("g", 4, policy=HomePolicy.LOCAL)
            for i in range(10):
                yield from ctx.atomic_swap(region, 0, float(i))
        else:
            yield from ctx.compute(1)

    result = machine2.run(program)
    p0 = result.board.procs[0]
    misses = p0.counts.get("shared_misses_local", 0) + p0.counts.get(
        "shared_misses_remote", 0
    )
    assert misses == 1  # only the first swap misses
    assert p0.counts["atomic_ops"] == 10


def test_flush_of_absent_lines_is_noop(machine2):
    def program(ctx):
        if ctx.pid == 0:
            region = ctx.gmalloc("g", 8)
            yield from ctx.flush(region)  # nothing cached yet

    result = machine2.run(program)
    assert result.board.total_count("flushes") == 0


def test_flush_dirty_line_writes_back(machine2):
    def program(ctx):
        if ctx.pid == 0:
            region = ctx.gmalloc("g", 4, policy=HomePolicy.LOCAL)
            yield from ctx.write(region, 0, values=[1.0])
            yield from ctx.flush(region)
        else:
            yield from ctx.compute(1)

    result = machine2.run(program)
    p0 = result.board.procs[0]
    assert p0.counts["flushes"] == 1
    assert p0.counts["writebacks"] == 1


def test_flushed_reader_can_remiss(machine2):
    def program(ctx):
        if ctx.pid == 0:
            region = ctx.gmalloc("g", 4, policy=HomePolicy.LOCAL, fill=3.0)
        yield from ctx.barrier()
        if ctx.pid == 1:
            region = ctx.machine.regions[0]
            yield from ctx.read(region, 0, 1)
            yield from ctx.flush(region, 0, 1)
            values = yield from ctx.read(region, 0, 1)  # re-miss, same data
            assert values[0] == 3.0

    result = machine2.run(program)
    p1 = result.board.procs[1]
    assert p1.counts["shared_misses_remote"] == 2


def test_push_update_requires_update_region(machine2):
    def program(ctx):
        if ctx.pid == 0:
            region = ctx.gmalloc("g", 4)  # dir protocol
            yield from ctx.push_update(region, [0], [1])

    with pytest.raises(Exception):
        machine2.run(program)


def test_push_update_to_self_is_skipped(machine2):
    def program(ctx):
        if ctx.pid == 0:
            region = ctx.gmalloc("g", 4, protocol="update")
            yield from ctx.write(region, 0, values=[1.0])
            yield from ctx.push_update(region, [0], [0])  # self only

    result = machine2.run(program)
    assert result.board.total_count("update_pushes") == 0


def test_prefetch_of_cached_block_is_noop(machine2):
    def program(ctx):
        if ctx.pid == 0:
            region = ctx.gmalloc("g", 4, policy=HomePolicy.LOCAL)
            yield from ctx.read(region, 0, 1)
            yield from ctx.prefetch_gather(region, [0])
        else:
            yield from ctx.compute(1)

    result = machine2.run(program)
    assert result.board.total_count("prefetches") == 0


def test_prefetch_then_read_hits(machine2):
    def program(ctx):
        if ctx.pid == 0:
            ctx.gmalloc("g", 4, policy=HomePolicy.LOCAL)
        yield from ctx.barrier()
        if ctx.pid == 1:
            region = ctx.machine.regions[0]
            yield from ctx.prefetch_gather(region, [0])
            yield from ctx.compute(5_000)  # plenty of time to arrive
            yield from ctx.read(region, 0, 1)

    result = machine2.run(program)
    p1 = result.board.procs[1]
    assert p1.counts["prefetches"] == 1
    # The demand read found the line: no demand miss charged.
    assert p1.counts.get("shared_misses_remote", 0) == 0
    assert p1.cycles.get(SmCat.SHARED_MISS, 0) == 0


def test_prefetch_race_with_demand_read_is_safe(machine2):
    """A demand read issued before the prefetch reply still works."""

    def program(ctx):
        if ctx.pid == 0:
            ctx.gmalloc("g", 4, policy=HomePolicy.LOCAL, fill=4.0)
        yield from ctx.barrier()
        if ctx.pid == 1:
            region = ctx.machine.regions[0]
            yield from ctx.prefetch_gather(region, [0])
            values = yield from ctx.read(region, 0, 1)  # immediately
            assert values[0] == 4.0

    machine2.run(program)  # must not crash or deadlock


def test_gmalloc_bad_protocol_rejected(machine2):
    with pytest.raises(ValueError):
        machine2.contexts[0].gmalloc("g", 4, protocol="bogus")


def test_write_scatter_values_land(machine2):
    def program(ctx):
        if ctx.pid == 0:
            region = ctx.gmalloc("g", 16)
            yield from ctx.write_scatter(region, [1, 5, 9], [1.0, 5.0, 9.0])
            assert region.np[1] == 1.0
            assert region.np[5] == 5.0
            assert region.np[9] == 9.0
        else:
            yield from ctx.compute(1)

    machine2.run(program)


def test_read_empty_gather(machine2):
    def program(ctx):
        if ctx.pid == 0:
            region = ctx.gmalloc("g", 8)
            values = yield from ctx.read_gather(region, [])
            assert values.size == 0

    machine2.run(program)
