"""Tests of the SmContext surface: private/shared accesses and costs."""

import numpy as np

from repro.memory.dataspace import HomePolicy
from repro.stats.categories import SmCat


def test_private_miss_costs(machine2):
    def program(ctx):
        buf = ctx.alloc_private("buf", 8)  # 2 blocks
        yield from ctx.read(buf)
        yield from ctx.read(buf)  # warm

    result = machine2.run(program)
    board = result.board
    assert board.mean_count("private_misses") == 2
    common = machine2.params.common
    assert board.mean_cycles(SmCat.PRIVATE_MISS) == 2 * common.local_miss_total_cycles
    assert board.mean_cycles(SmCat.TLB_MISS) == common.tlb_miss_cycles


def test_shared_read_local_home(machine2):
    """A miss to a shared block homed locally uses self-messages (10 cy)."""

    def program(ctx):
        if ctx.pid == 0:
            region = ctx.gmalloc("g", 4, policy=HomePolicy.LOCAL)
            yield from ctx.read(region)
        else:
            yield from ctx.compute(1)

    result = machine2.run(program)
    p0 = result.board.procs[0]
    assert p0.counts["shared_misses_local"] == 1
    assert p0.counts.get("shared_misses_remote", 0) == 0
    # 19 + 10 (self msg) + directory 33 + 10 (self msg) ~ 72 cycles.
    assert 50 <= p0.cycles[SmCat.SHARED_MISS] <= 120


def test_shared_read_remote_home_idle_cost(machine2):
    """Remote miss to idle data: ~250 cycles (paper Section 5.2)."""

    def program(ctx):
        region = ctx.machine.contexts[0].gmalloc("g", 4, policy=HomePolicy.LOCAL) \
            if ctx.pid == 0 else None
        yield from ctx.barrier()
        if ctx.pid == 1:
            region = ctx.machine.regions[0]
            yield from ctx.read(region)

    result = machine2.run(program)
    p1 = result.board.procs[1]
    assert p1.counts["shared_misses_remote"] == 1
    assert 220 <= p1.cycles[SmCat.SHARED_MISS] <= 280


def test_round_robin_placement_spreads_homes(machine4):
    """With round-robin gmalloc most of a node's own blocks are remote."""

    def program(ctx):
        if ctx.pid == 0:
            region = ctx.gmalloc("g", 64)  # 16 blocks over 4 nodes
            yield from ctx.read(region)
        else:
            yield from ctx.compute(1)

    result = machine4.run(program)
    p0 = result.board.procs[0]
    assert p0.counts["shared_misses_local"] == 4
    assert p0.counts["shared_misses_remote"] == 12


def test_write_fault_upgrade(machine2):
    """Read-then-write: the write to a SHARED line is a write fault."""

    def program(ctx):
        if ctx.pid == 0:
            region = ctx.gmalloc("g", 4, policy=HomePolicy.LOCAL)
            yield from ctx.read(region)
            yield from ctx.write(region, 0, values=[1.0])
        else:
            yield from ctx.compute(1)

    result = machine2.run(program)
    p0 = result.board.procs[0]
    assert p0.counts["write_faults"] == 1
    assert p0.cycles[SmCat.WRITE_FAULT] > 0
    # Second write to the now-EXCLUSIVE line is free.
    assert p0.counts["write_faults"] == 1


def test_producer_consumer_invalidation_pattern(machine2):
    """The paper's EM3D point: each update costs a 4-message exchange.

    Producer writes, consumer reads, repeatedly: every round the
    consumer misses (its copy was invalidated) and the producer write
    faults (the consumer's read downgraded its line).
    """

    rounds = 5

    def program(ctx):
        region = (
            ctx.gmalloc("v", 4, policy=HomePolicy.LOCAL)
            if ctx.pid == 0
            else None
        )
        yield from ctx.barrier()
        region = ctx.machine.regions[0]
        for r in range(rounds):
            if ctx.pid == 0:
                yield from ctx.write(region, 0, values=[float(r)])
            yield from ctx.barrier()
            if ctx.pid == 1:
                values = yield from ctx.read(region, 0, 1)
                assert values[0] == float(r)
            yield from ctx.barrier()

    result = machine2.run(program)
    p0, p1 = result.board.procs
    # Consumer misses every round after the first invalidation.
    assert p1.counts["shared_misses_remote"] >= rounds - 1
    # Producer: first write is a miss/upgrade, later writes fault.
    assert p0.counts["write_faults"] >= rounds - 2
    assert p1.counts["invalidations_received"] >= rounds - 2


def test_traffic_counting_remote_miss(machine2):
    """A remote miss transmits request (40 control) + reply (32+8)."""

    def program(ctx):
        if ctx.pid == 0:
            ctx.gmalloc("g", 4, policy=HomePolicy.LOCAL)
        yield from ctx.barrier()
        if ctx.pid == 1:
            yield from ctx.read(ctx.machine.regions[0])

    result = machine2.run(program)
    p1 = result.board.procs[1]
    assert p1.counts["data_bytes"] == 32
    assert p1.counts["control_bytes"] == 48


def test_traffic_counting_local_miss_is_free(machine2):
    """Messages to the local directory never cross the network: a miss
    to a locally homed block counts no wire bytes (the paper's byte
    counts are network traffic)."""

    def program(ctx):
        if ctx.pid == 0:
            region = ctx.gmalloc("g", 4, policy=HomePolicy.LOCAL)
            yield from ctx.read(region)
        else:
            yield from ctx.compute(1)

    result = machine2.run(program)
    p0 = result.board.procs[0]
    assert p0.counts.get("data_bytes", 0) == 0
    assert p0.counts.get("control_bytes", 0) == 0


def test_values_move_between_processors(machine2):
    seen = {}

    def program(ctx):
        if ctx.pid == 0:
            region = ctx.gmalloc("g", 8)
            yield from ctx.write(region, 0, values=np.arange(8.0))
        yield from ctx.barrier()
        if ctx.pid == 1:
            region = ctx.machine.regions[0]
            values = yield from ctx.read(region)
            seen[1] = np.array(values)

    machine2.run(program)
    assert (seen[1] == np.arange(8.0)).all()


def test_read_gather_and_write_scatter(machine2):
    def program(ctx):
        if ctx.pid == 0:
            region = ctx.gmalloc("g", 32)
            yield from ctx.write_scatter(region, [0, 15, 31], [1.0, 2.0, 3.0])
            values = yield from ctx.read_gather(region, [0, 15, 31])
            assert list(values) == [1.0, 2.0, 3.0]
        else:
            yield from ctx.compute(1)

    machine2.run(program)


def test_compute_remap_in_sync_context(machine2):
    def program(ctx):
        with ctx.stats.context("sync"):
            yield from ctx.compute(77)

    result = machine2.run(program)
    assert result.board.mean_cycles(SmCat.SYNC_COMPUTE) == 77
    assert result.board.mean_cycles(SmCat.COMPUTE) == 0


def test_startup_wait(machine4):
    def program(ctx):
        if ctx.pid == 0:
            yield from ctx.compute(1000)
            ctx.create()
        else:
            yield from ctx.wait_create()

    result = machine4.run(program)
    for proc in result.board.procs[1:]:
        assert proc.cycles[SmCat.STARTUP_WAIT] == 1000
    assert result.board.procs[0].cycles.get(SmCat.STARTUP_WAIT, 0) == 0


def test_barrier_charges_wait(machine4):
    def program(ctx):
        yield from ctx.compute(100 * ctx.pid)
        yield from ctx.barrier()

    result = machine4.run(program)
    waits = [p.cycles.get(SmCat.BARRIER, 0) for p in result.board.procs]
    assert waits[0] > waits[3]
    assert waits[3] == machine4.params.common.barrier_latency
