"""ASCII plot rendering."""

from repro.sweep.plot import render_plot, render_plots
from repro.sweep.result import SweepResult


def _result(points=None, axes=None, crossovers=None):
    return SweepResult(
        spec_name="t", exp_id="em3d", description="",
        axes=axes or [["net_latency", [0, 50, 100]]],
        metrics=["sm_over_mp"],
        points=points or [
            {"coords": {"net_latency": 0}, "cache_key": "a",
             "metrics": {"sm_over_mp": 1.4}},
            {"coords": {"net_latency": 50}, "cache_key": "b",
             "metrics": {"sm_over_mp": 2.3}},
            {"coords": {"net_latency": 100}, "cache_key": "c",
             "metrics": {"sm_over_mp": 3.1}},
        ],
        crossovers=crossovers or [],
    )


def test_plot_has_title_frame_and_glyphs():
    text = render_plot(_result(), "sm_over_mp", width=40, height=8)
    lines = text.split("\n")
    assert lines[0] == "t: sm_over_mp vs net_latency"
    assert set(lines[1]) == {"-"}
    assert text.count("o") >= 3  # one glyph per point
    assert "net_latency" in lines[-1]
    # Every plot row is framed.
    assert all("|" in line for line in lines if " |" in line)


def test_plot_draws_crossover_level_and_note():
    probe = {"name": "p", "metric": "sm_over_mp", "level": 2.0,
             "axis": "net_latency", "crossed": True, "at": 30.0,
             "detail": "crosses 2 at net_latency ~ 30"}
    text = render_plot(_result(crossovers=[probe]), "sm_over_mp",
                       width=40, height=8)
    assert "[x] crosses 2 at net_latency ~ 30" in text
    # The level rule appears as a dashed row.
    assert any(line.count("-") > 20 and "|" in line
               for line in text.split("\n")[2:-3])


def test_plot_flat_series_does_not_divide_by_zero():
    flat = _result(points=[
        {"coords": {"net_latency": x}, "cache_key": str(x),
         "metrics": {"sm_over_mp": 2.0}}
        for x in (0, 50, 100)
    ])
    text = render_plot(flat, "sm_over_mp", width=30, height=6)
    assert "sm_over_mp" in text


def test_plot_two_axis_renders_one_series_per_row():
    points = []
    for lat in (0, 100):
        for kb in (4, 16):
            points.append({
                "coords": {"net_latency": lat, "cache_kb": kb},
                "cache_key": f"{lat}-{kb}",
                "metrics": {"sm_over_mp": 1.0 + lat / 100 + kb / 16},
            })
    result = _result(
        points=points,
        axes=[["net_latency", [0, 100]], ["cache_kb", [4, 16]]],
    )
    text = render_plot(result, "sm_over_mp", width=40, height=10)
    assert "legend: o=cache_kb=4  *=cache_kb=16" in text
    assert "*" in text


def test_render_plots_covers_every_metric():
    result = _result()
    result.metrics = ["sm_over_mp"]
    assert render_plots(result).count("vs net_latency") == 1


def test_plot_single_point():
    single = _result(points=[
        {"coords": {"net_latency": 0}, "cache_key": "a",
         "metrics": {"sm_over_mp": 1.4}},
    ])
    single.axes = [["net_latency", [0]]]
    assert "o" in render_plot(single, "sm_over_mp", width=20, height=5)
