"""Axis name resolution, override merging, and CLI value parsing."""

import pytest

from repro.core.experiments import EXPERIMENTS
from repro.sweep.axes import (
    axis_overrides,
    known_axes,
    merge_overrides,
    parse_axis_flag,
    parse_axis_value,
)

EM3D = EXPERIMENTS["em3d"].config
GAUSS = EXPERIMENTS["gauss"].config
VALIDATION = EXPERIMENTS["validation"].config  # no app config


def test_top_level_axes():
    assert axis_overrides(EM3D, "procs", 4) == {"procs": 4}
    assert axis_overrides(EM3D, "seed", 7) == {"seed": 7}
    assert axis_overrides(EM3D, "cache_bytes", 4096) == {"cache_bytes": 4096}


def test_cache_kb_convenience_axis():
    assert axis_overrides(EM3D, "cache_kb", 8) == {"cache_bytes": 8192}


def test_machine_axes_and_alias():
    assert axis_overrides(EM3D, "network_latency", 50) == {
        "machine": {"network_latency": 50}
    }
    assert axis_overrides(EM3D, "net_latency", 50) == {
        "machine": {"network_latency": 50}
    }
    assert axis_overrides(EM3D, "tlb_entries", 32) == {
        "machine": {"tlb_entries": 32}
    }


def test_app_axes_bare_and_qualified():
    assert axis_overrides(GAUSS, "n", 64) == {"app": {"n": 64}}
    assert axis_overrides(GAUSS, "app.n", 64) == {"app": {"n": 64}}
    assert axis_overrides(EM3D, "nodes_per_proc", 40) == {
        "app": {"nodes_per_proc": 40}
    }


def test_options_axes_are_qualified():
    lcp = EXPERIMENTS["lcp"].config
    assert axis_overrides(lcp, "options.asynchronous", True) == {
        "options": {"asynchronous": True}
    }


def test_unknown_axis_fails_with_suggestion():
    with pytest.raises(ValueError, match="did you mean 'network_latency'"):
        axis_overrides(EM3D, "network_latncy", 50)
    with pytest.raises(ValueError, match="unknown sweep axis"):
        axis_overrides(VALIDATION, "n", 8)  # no app config to resolve


def test_known_axes_cover_every_channel():
    names = known_axes(EM3D)
    for expected in ("procs", "cache_kb", "network_latency", "net_latency",
                     "app.degree", "degree"):
        assert expected in names


def test_merge_overrides_deep_merges_channels():
    merged = merge_overrides(
        {"procs": 4, "app": {"n": 64}},
        {"machine": {"network_latency": 50}},
        {"app": {"seed": 7}, "machine": {"block_bytes": 64}},
    )
    assert merged == {
        "procs": 4,
        "app": {"n": 64, "seed": 7},
        "machine": {"network_latency": 50, "block_bytes": 64},
    }


def test_merge_overrides_later_wins():
    assert merge_overrides({"procs": 2}, {"procs": 8}) == {"procs": 8}
    merged = merge_overrides({"app": {"n": 1}}, {"app": {"n": 2}})
    assert merged == {"app": {"n": 2}}


def test_parse_axis_value_types():
    assert parse_axis_value("8") == 8
    assert isinstance(parse_axis_value("8"), int)
    assert parse_axis_value("0.5") == 0.5
    assert parse_axis_value("true") is True
    assert parse_axis_value("False") is False
    assert parse_axis_value("local") == "local"


def test_parse_axis_flag():
    name, values = parse_axis_flag("net_latency=0,50,100")
    assert name == "net_latency"
    assert values == (0, 50, 100)
    with pytest.raises(ValueError, match="expected name="):
        parse_axis_flag("net_latency")
    with pytest.raises(ValueError, match="empty axis name or value"):
        parse_axis_flag("=1,2")
    with pytest.raises(ValueError, match="empty axis name or value"):
        parse_axis_flag("procs=,")


def test_consistency_and_preset_axes():
    assert axis_overrides(EM3D, "consistency", "tso") == {"consistency": "tso"}
    assert axis_overrides(EM3D, "preset", "cluster") == {"preset": "cluster"}
    assert "consistency" in known_axes(EM3D)
    assert "preset" in known_axes(VALIDATION)
