"""Crossover detection and curve-shape helpers."""

import pytest

from repro.sweep.analysis import (
    crossover_report,
    find_crossover,
    fmt_series,
    monotone,
    speedup_vs_first,
)


def test_find_crossover_interpolates():
    # y crosses 1.0 halfway between x=4 (y=1.2) and x=8 (y=0.8).
    at = find_crossover([1, 2, 4, 8], [2.0, 1.5, 1.2, 0.8], level=1.0)
    assert at == pytest.approx(6.0)


def test_find_crossover_exact_touch_counts():
    assert find_crossover([0, 10, 20], [2.0, 1.0, 0.5], level=1.0) == 10.0
    assert find_crossover([0, 10], [1.0, 2.0], level=1.0) == 0.0


def test_find_crossover_none_when_one_sided():
    assert find_crossover([0, 10, 20], [1.4, 2.0, 5.0], level=1.0) is None
    assert find_crossover([0, 10], [0.2, 0.8], level=1.0) is None


def test_find_crossover_first_crossing_wins():
    at = find_crossover([0, 1, 2, 3], [2.0, 0.5, 2.0, 0.5], level=1.0)
    assert 0 < at < 1


def test_find_crossover_validates_input():
    with pytest.raises(ValueError):
        find_crossover([], [], level=1.0)
    with pytest.raises(ValueError):
        find_crossover([1, 2], [1.0], level=1.0)


def test_crossover_report_shapes():
    crossed = crossover_report(
        "probe", "procs", [1, 2, 4, 8], [2.0, 1.5, 1.2, 0.8], "r", 1.0
    )
    assert crossed["crossed"] is True
    assert crossed["at"] == pytest.approx(6.0)
    assert "crosses 1 at procs" in crossed["detail"]

    flat = crossover_report(
        "probe", "lat", [0, 100], [1.4, 5.0], "r", 1.0, "described"
    )
    assert flat["crossed"] is False and flat["at"] is None
    assert flat["detail"].startswith("described: ")
    assert "stays above 1" in flat["detail"]


def test_monotone_directions():
    assert monotone([1, 2, 3], increasing=True)
    assert monotone([3, 2, 1], increasing=False)
    assert not monotone([1, 3, 2], increasing=True, strict=True)
    assert monotone([1, 2, 2], increasing=True)  # plateau ok unless strict
    assert not monotone([1, 2, 2], increasing=True, strict=True)


def test_monotone_tolerance_forgives_noise():
    assert monotone([1.0, 2.0, 1.95], increasing=True, tolerance=0.1)
    assert not monotone([1.0, 2.0, 1.5], increasing=True, tolerance=0.1)


def test_speedup_vs_first():
    assert speedup_vs_first([100.0, 50.0, 25.0]) == [1.0, 2.0, 4.0]
    with pytest.raises(ValueError):
        speedup_vs_first([])
    with pytest.raises(ValueError):
        speedup_vs_first([0.0, 1.0])


def test_fmt_series():
    assert fmt_series([1.0, 2.5]) == "1 -> 2.5"
