"""Engine behaviour: caching, incrementality, interruption, resume.

All engine tests use an in-process fake experiment (``jobs=1`` — the
spawned workers of a real parallel run re-import the registry and
would not see the monkeypatch) with a runner cheap enough to count
invocations exactly. The real shipped specs run in
``test_specs_shipped.py`` (slow) and the CI sweep-smoke job.
"""

import pytest

from repro.core import experiments
from repro.runner.api import clear_memory_cache
from repro.runner.cache import ResultCache
from repro.runner.config import ExperimentConfig
from repro.sweep import SweepSpec, load_result, run_sweep
from repro.sweep.engine import latest_manifest, result_path
from repro.sweep.spec import CrossoverSpec

PROCS = (1, 2, 3, 4, 5)


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_memory_cache()
    yield
    clear_memory_cache()


@pytest.fixture
def fake(monkeypatch):
    """Register a fake experiment; returns (calls, fail_on) handles."""
    calls = []
    fail_on = set()

    def runner(config):
        if config.procs in fail_on:
            raise RuntimeError(f"interrupted at procs={config.procs}")
        calls.append(config.procs)
        return {"value": 100.0 / config.procs}

    spec = experiments.ExperimentSpec(
        id="fake_sweep", title="f", paper_tables="none", description="d",
        runner=runner, config=ExperimentConfig(exp_id="fake_sweep"),
        shape=lambda r: [("ran", True, "ok")], paper={},
    )
    monkeypatch.setitem(experiments.EXPERIMENTS, "fake_sweep", spec)
    return calls, fail_on


def _spec(axes=(("procs", PROCS),), **kwargs):
    defaults = dict(
        name="fake",
        exp_id="fake_sweep",
        axes=axes,
        metrics=("value",),
        extra_metrics={"value": lambda s: s["data"]["value"]},
    )
    defaults.update(kwargs)
    return SweepSpec(**defaults)


def test_cold_then_warm(fake, tmp_path):
    calls, _fail = fake
    cache = ResultCache(tmp_path)
    cold = run_sweep(_spec(), jobs=1, cache=cache)
    assert calls == [1, 2, 3, 4, 5]
    assert cold.meta["simulated"] == 5 and cold.meta["cached"] == 0
    xs, ys = cold.series("value")
    assert xs == list(PROCS)
    assert ys == [100.0, 50.0, pytest.approx(100 / 3), 25.0, 20.0]

    warm = run_sweep(_spec(), jobs=1, cache=cache)
    assert calls == [1, 2, 3, 4, 5]  # no new simulations
    assert warm.meta["simulated"] == 0 and warm.meta["cached"] == 5
    assert warm == cold  # identical outside meta (compare=False)


def test_enlarged_sweep_only_simulates_new_points(fake, tmp_path):
    calls, _fail = fake
    cache = ResultCache(tmp_path)
    run_sweep(_spec(axes=(("procs", (1, 2, 3)),)), jobs=1, cache=cache)
    assert calls == [1, 2, 3]
    widened = run_sweep(_spec(), jobs=1, cache=cache)
    assert calls == [1, 2, 3, 4, 5]  # the three warm points were served
    assert widened.meta["simulated"] == 2 and widened.meta["cached"] == 3


def test_force_resimulates_everything(fake, tmp_path):
    calls, _fail = fake
    cache = ResultCache(tmp_path)
    run_sweep(_spec(), jobs=1, cache=cache)
    clear_memory_cache()
    forced = run_sweep(_spec(), jobs=1, cache=cache, force=True)
    assert calls == [1, 2, 3, 4, 5, 1, 2, 3, 4, 5]
    assert forced.meta["simulated"] == 5


def test_interrupted_sweep_resumes_bit_identical(fake, tmp_path):
    """The acceptance test: interrupt mid-grid, resume, compare."""
    calls, fail_on = fake
    cache = ResultCache(tmp_path)

    # Point 5 dies; the first (batched) points were already stored.
    fail_on.add(5)
    with pytest.raises(RuntimeError, match="interrupted at procs=5"):
        run_sweep(_spec(), jobs=1, cache=cache)
    assert 5 not in calls

    manifest = latest_manifest(cache, "fake")
    assert manifest is not None
    statuses = {p["coords"]["procs"]: p["status"] for p in manifest["points"]}
    assert statuses[5] == "pending"
    done = [procs for procs, status in statuses.items() if status == "done"]
    assert done  # the completed batch survived the interruption

    # "Fix the outage" and resume: only the missing points simulate.
    fail_on.clear()
    clear_memory_cache()
    del calls[:]
    resumed = run_sweep(_spec(), jobs=1, cache=cache, resume=True)
    assert calls == sorted(set(PROCS) - set(done))
    assert resumed.meta["simulated"] == len(PROCS) - len(done)

    # Bit-identical to a never-interrupted run of the same grid.
    clear_memory_cache()
    uninterrupted = run_sweep(_spec(), jobs=1, cache=ResultCache(tmp_path / "b"))
    assert resumed == uninterrupted  # meta (timing/accounting) excluded
    assert resumed.to_csv() == uninterrupted.to_csv()


def test_resume_reuses_manifest_axes(fake, tmp_path):
    calls, _fail = fake
    cache = ResultCache(tmp_path)
    run_sweep(_spec(), axes={"procs": (2, 4)}, jobs=1, cache=cache)
    assert calls == [2, 4]
    # Resume ignores the spec's default axes in favour of the manifest's.
    resumed = run_sweep(_spec(), jobs=1, cache=cache, resume=True)
    assert calls == [2, 4]
    assert resumed.axes == [["procs", [2, 4]]]


def test_resume_without_manifest_fails(fake, tmp_path):
    with pytest.raises(FileNotFoundError, match="nothing to resume"):
        run_sweep(_spec(), jobs=1, cache=ResultCache(tmp_path), resume=True)


def test_result_json_written_beside_manifest(fake, tmp_path):
    cache = ResultCache(tmp_path)
    spec = _spec()
    result = run_sweep(spec, jobs=1, cache=cache)
    stored = load_result(result_path(cache, spec))
    assert stored == result
    assert stored.meta["simulated"] == 5  # meta round-trips, just not compared


def test_crossover_and_checks_flow_through(fake, tmp_path):
    spec = _spec(
        crossovers=(CrossoverSpec("halves", metric="value", level=40.0),),
        checks=lambda result: [
            ("drops", result.series("value")[1][0] > result.series("value")[1][-1],
             "100 -> 20"),
        ],
    )
    result = run_sweep(spec, jobs=1, cache=ResultCache(tmp_path))
    [probe] = result.crossovers
    assert probe["crossed"] is True
    assert 2 < probe["at"] < 3  # 50 -> 33.3 brackets 40
    assert result.checks == [["drops", True, "100 -> 20"]]
    assert result.all_ok


def test_unknown_metric_fails_with_suggestion(fake, tmp_path):
    spec = _spec(metrics=("sm_totl",), extra_metrics=None)
    with pytest.raises(ValueError, match="did you mean 'sm_total'"):
        run_sweep(spec, jobs=1, cache=ResultCache(tmp_path))


def test_progress_reports_every_point(fake, tmp_path):
    cache = ResultCache(tmp_path)
    seen = []
    run_sweep(_spec(), jobs=1, cache=cache,
              progress=lambda done, total, point, record, simulated:
              seen.append((done, total, point.coords["procs"], simulated)))
    assert [s[0] for s in seen] == [1, 2, 3, 4, 5]
    assert all(total == 5 for _d, total, _p, _s in seen)
    assert all(simulated for *_rest, simulated in seen)

    del seen[:]
    run_sweep(_spec(), jobs=1, cache=cache, progress=lambda *a: seen.append(a))
    assert len(seen) == 5
    assert not any(simulated for *_rest, simulated in seen)
