"""SweepSpec validation, axis replacement, and grid expansion."""

import pytest

from repro.core.experiments import EXPERIMENTS
from repro.sweep.spec import SweepSpec

EM3D = EXPERIMENTS["em3d"].config


def _spec(**kwargs):
    defaults = dict(
        name="t",
        exp_id="em3d",
        axes=(("net_latency", (0, 50)),),
        metrics=("sm_over_mp",),
    )
    defaults.update(kwargs)
    return SweepSpec(**defaults)


def test_spec_validates_axis_count():
    with pytest.raises(ValueError, match="one or two axes"):
        _spec(axes=())
    with pytest.raises(ValueError, match="one or two axes"):
        _spec(axes=(("a", (1,)), ("b", (1,)), ("c", (1,))))


def test_spec_rejects_empty_axis_and_missing_metrics():
    with pytest.raises(ValueError, match="axis 'x' is empty"):
        _spec(axes=(("x", ()),))
    with pytest.raises(ValueError, match="no metrics"):
        _spec(metrics=())


def test_with_axes_replaces_in_place_and_appends():
    spec = _spec(axes=(("net_latency", (0, 50)),))
    widened = spec.with_axes({"net_latency": (0, 100, 200)})
    assert widened.axes == (("net_latency", (0, 100, 200)),)
    two = spec.with_axes({"cache_kb": (4, 16)})
    assert two.axes == (
        ("net_latency", (0, 50)),
        ("cache_kb", (4, 16)),
    )
    assert spec.with_axes(None) is spec


def test_grid_1d_order_and_overrides():
    spec = _spec(
        axes=(("net_latency", (0, 50)),),
        base_overrides={"procs": 4},
    )
    points = spec.grid(EM3D)
    assert [p.coords for p in points] == [
        {"net_latency": 0},
        {"net_latency": 50},
    ]
    assert points[0].overrides == {
        "procs": 4,
        "machine": {"network_latency": 0},
    }


def test_grid_2d_row_major_first_axis_outermost():
    spec = _spec(axes=(("net_latency", (0, 50)), ("cache_kb", (4, 8))))
    points = spec.grid(EM3D)
    assert [p.coords for p in points] == [
        {"net_latency": 0, "cache_kb": 4},
        {"net_latency": 0, "cache_kb": 8},
        {"net_latency": 50, "cache_kb": 4},
        {"net_latency": 50, "cache_kb": 8},
    ]
    assert points[0].overrides == {
        "machine": {"network_latency": 0},
        "cache_bytes": 4096,
    }


def test_grid_rejects_unknown_axis_before_any_simulation():
    spec = _spec(axes=(("network_latncy", (0,)),))
    with pytest.raises(ValueError, match="did you mean"):
        spec.grid(EM3D)


def test_point_label():
    spec = _spec()
    point = spec.grid(EM3D)[0]
    assert point.label() == "net_latency=0"


def test_grid_key_stable_and_sensitive():
    spec = _spec()
    assert spec.grid_key() == _spec().grid_key()
    assert spec.grid_key() != spec.with_axes({"net_latency": (0,)}).grid_key()
    assert spec.grid_key() != _spec(base_overrides={"procs": 2}).grid_key()
    # The checks callable is behavioural, not identity: same grid.
    assert spec.grid_key() == _spec(checks=lambda r: []).grid_key()
