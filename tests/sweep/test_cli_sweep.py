"""`repro sweep` CLI: exit codes, artifacts, flag plumbing."""

import json

import pytest

from repro.cli import main
from repro.core import experiments
from repro.runner.api import clear_memory_cache
from repro.runner.config import ExperimentConfig
from repro.sweep import SweepSpec
from repro.sweep import specs as sweep_specs


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_memory_cache()
    yield
    clear_memory_cache()


@pytest.fixture
def tiny_sweep(monkeypatch):
    """A shipped-looking spec over a fake experiment (jobs=1 only)."""

    def runner(config):
        return {"value": 10.0 * config.procs}

    exp = experiments.ExperimentSpec(
        id="fake_cli", title="f", paper_tables="none", description="d",
        runner=runner, config=ExperimentConfig(exp_id="fake_cli"),
        shape=lambda r: [("ran", True, "ok")], paper={},
    )
    monkeypatch.setitem(experiments.EXPERIMENTS, "fake_cli", exp)
    spec = SweepSpec(
        name="tiny", exp_id="fake_cli",
        axes=(("procs", (1, 2, 3)),),
        metrics=("value",),
        extra_metrics={"value": lambda s: s["data"]["value"]},
        checks=lambda result: [
            ("grows", result.series("value")[1] == [10.0, 20.0, 30.0], "ok"),
        ],
    )
    monkeypatch.setitem(sweep_specs.SWEEP_SPECS, "tiny", spec)
    return spec


def test_sweep_unknown_spec_exits_2(capsys):
    assert main(["sweep", "nosuchsweep"]) == 2
    err = capsys.readouterr().err
    assert "unknown sweep 'nosuchsweep'" in err
    assert "available:" in err


def test_sweep_suggests_close_spec_name(capsys):
    assert main(["sweep", "em3d-latencey"]) == 2
    assert "did you mean 'em3d-latency'" in capsys.readouterr().err


def test_sweep_malformed_axis_flag_exits_2(tiny_sweep, capsys):
    assert main(["sweep", "tiny", "--axis", "procs"]) == 2
    assert "expected name=" in capsys.readouterr().err


def test_sweep_unknown_axis_name_exits_2(tiny_sweep, capsys):
    assert main(["sweep", "tiny", "--jobs", "1",
                 "--axis", "prcs=1,2"]) == 2
    assert "unknown sweep axis 'prcs'" in capsys.readouterr().err


def test_sweep_success_prints_table_plot_and_checks(tiny_sweep, capsys):
    assert main(["sweep", "tiny", "--jobs", "1"]) == 0
    out = capsys.readouterr().out
    assert "sweep tiny: fake_cli over procs=[1, 2, 3]" in out
    assert "value" in out  # table column
    assert "tiny: value vs procs" in out  # plot title
    assert "[PASS] grows: ok" in out
    assert "3 simulated, 0 cached" in out


def test_sweep_warm_rerun_serves_cache(tiny_sweep, capsys):
    assert main(["sweep", "tiny", "--jobs", "1"]) == 0
    capsys.readouterr()
    clear_memory_cache()
    assert main(["sweep", "tiny", "--jobs", "1"]) == 0
    assert "0 simulated, 3 cached" in capsys.readouterr().out


def test_sweep_axis_override_narrows_grid(tiny_sweep, capsys):
    # A 2-point series still satisfies the check? No — values differ.
    assert main(["sweep", "tiny", "--jobs", "1",
                 "--axis", "procs=1,2,3"]) == 0
    assert "3 simulated" in capsys.readouterr().out


def test_sweep_failing_checks_exit_1(tiny_sweep, capsys):
    # Narrowing the grid breaks the [10, 20, 30] expectation.
    assert main(["sweep", "tiny", "--jobs", "1",
                 "--axis", "procs=2,3"]) == 1
    captured = capsys.readouterr()
    assert "[FAIL] grows" in captured.out
    assert "sweep shape checks failed" in captured.err


def test_sweep_json_and_csv_artifacts(tiny_sweep, tmp_path, capsys):
    json_path = tmp_path / "sweep.json"
    csv_path = tmp_path / "sweep.csv"
    assert main(["sweep", "tiny", "--jobs", "1",
                 "--json", str(json_path), "--csv", str(csv_path)]) == 0
    payload = json.loads(json_path.read_text())
    assert payload["spec_name"] == "tiny"
    assert [p["metrics"]["value"] for p in payload["points"]] == [
        10.0, 20.0, 30.0
    ]
    lines = csv_path.read_text().strip().split("\n")
    assert lines[0] == "procs,value"
    assert lines[1] == "1,10.0"


def test_sweep_resume_flag_without_manifest_exits_2(tiny_sweep, capsys):
    assert main(["sweep", "tiny", "--jobs", "1", "--resume"]) == 2
    assert "nothing to resume" in capsys.readouterr().err


def test_sweep_help_lists_shared_flags():
    import argparse

    from repro.cli import build_parser

    parser = build_parser()
    with pytest.raises(SystemExit) as excinfo:
        parser.parse_args(["sweep", "--help"])
    assert excinfo.value.code == 0


def test_shared_flags_spelled_identically_across_commands():
    from repro.cli import build_parser

    parser = build_parser()
    for command in (["run", "x"], ["sweep", "x"]):
        args = parser.parse_args(command + ["--jobs", "3", "--force",
                                            "--no-cache", "--json", "o.json"])
        assert args.jobs == 3
        assert args.force is True
        assert args.no_cache is True
        assert args.json == "o.json"
    args = parser.parse_args(["trace", "em3d", "--force", "--no-cache"])
    assert args.force is True and args.no_cache is True
    args = parser.parse_args(["fidelity", "--json", "f.json"])
    assert args.json == "f.json"
