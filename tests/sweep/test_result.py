"""SweepResult series extraction, serialization, and rendering."""

import pytest

from repro.sweep.result import SWEEP_SCHEMA, SweepResult, load_result


def _result_1d():
    return SweepResult(
        spec_name="t",
        exp_id="em3d",
        description="d",
        axes=[["net_latency", [0, 50]]],
        metrics=["sm_over_mp"],
        points=[
            {"coords": {"net_latency": 0}, "cache_key": "k0",
             "metrics": {"sm_over_mp": 1.4, "extra_speedup": 1.0}},
            {"coords": {"net_latency": 50}, "cache_key": "k1",
             "metrics": {"sm_over_mp": 2.3, "extra_speedup": 2.0}},
        ],
        checks=[["grows", True, "ok"]],
        meta={"elapsed_seconds": 1.0},
    )


def _result_2d():
    points = []
    for lat in (0, 50):
        for kb in (4, 8):
            points.append({
                "coords": {"net_latency": lat, "cache_kb": kb},
                "cache_key": f"k{lat}-{kb}",
                "metrics": {"sm_total": float(lat + kb)},
            })
    return SweepResult(
        spec_name="t2", exp_id="em3d", description="",
        axes=[["net_latency", [0, 50]], ["cache_kb", [4, 8]]],
        metrics=["sm_total"], points=points,
    )


def test_series_1d():
    xs, ys = _result_1d().series("sm_over_mp")
    assert xs == [0, 50]
    assert ys == [1.4, 2.3]


def test_series_2d_requires_where():
    result = _result_2d()
    with pytest.raises(ValueError, match="pass where="):
        result.series("sm_total")
    xs, ys = result.series("sm_total", where={"cache_kb": 8})
    assert xs == [0, 50]
    assert ys == [8.0, 58.0]


def test_rows_flatten_coords_and_metrics():
    rows = _result_1d().rows()
    assert rows[0] == {"net_latency": 0, "sm_over_mp": 1.4,
                       "extra_speedup": 1.0}


def test_jsonable_roundtrip_and_schema():
    result = _result_1d()
    clone = SweepResult.from_jsonable(result.to_jsonable())
    assert clone == result
    assert clone.schema == SWEEP_SCHEMA


def test_meta_excluded_from_identity():
    a, b = _result_1d(), _result_1d()
    b.meta = {"elapsed_seconds": 99.0, "simulated": 5}
    assert a == b  # meta is compare=False


def test_all_ok():
    result = _result_1d()
    assert result.all_ok
    result.checks.append(["fails", False, "bad"])
    assert not result.all_ok


def test_to_csv_includes_derived_columns():
    text = _result_1d().to_csv()
    lines = text.strip().split("\n")
    assert lines[0] == "net_latency,sm_over_mp,extra_speedup"
    assert lines[1] == "0,1.4,1.0"
    assert len(lines) == 3


def test_render_table_alignment():
    table = _result_1d().render_table()
    lines = table.split("\n")
    assert "net_latency" in lines[0]
    assert "sm_over_mp" in lines[0]
    assert "extra_speedup" in lines[0]
    assert set(lines[1]) == {"-"}
    assert len(lines) == 4


def test_load_result(tmp_path):
    import json

    result = _result_1d()
    path = tmp_path / "r.json"
    path.write_text(json.dumps(result.to_jsonable()))
    assert load_result(path) == result
