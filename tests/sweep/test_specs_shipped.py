"""The shipped paper-sensitivity specs (slow: real simulations)."""

import pytest

from repro.runner.cache import ResultCache
from repro.sweep import SWEEP_SPECS, get_sweep, run_sweep


def test_get_sweep_suggests_on_typo():
    with pytest.raises(ValueError, match="did you mean 'em3d-latency'"):
        get_sweep("em3d_latency")


def test_shipped_specs_are_well_formed():
    from repro.core.experiments import EXPERIMENTS

    for spec in SWEEP_SPECS.values():
        assert spec.exp_id in EXPERIMENTS
        # Grid expansion (axis validation) works against the real config.
        points = spec.grid(EXPERIMENTS[spec.exp_id].config)
        assert len(points) >= 3
        assert spec.checks is not None  # every shipped spec pins a claim


@pytest.mark.slow
def test_em3d_latency_reproduces_monotone_claim(tmp_path):
    """The paper's latency-sensitivity claim, machine-checked, plus the
    warm-rerun acceptance: every point served with zero simulations."""
    cache = ResultCache(tmp_path)
    cold = run_sweep(get_sweep("em3d-latency"), jobs=1, cache=cache)
    assert cold.all_ok, cold.checks
    _xs, ratio = cold.series("sm_over_mp")
    assert all(b > a for a, b in zip(ratio, ratio[1:]))
    assert cold.meta["simulated"] == 5

    warm = run_sweep(get_sweep("em3d-latency"), jobs=1, cache=cache)
    assert warm.meta["simulated"] == 0
    assert warm.meta["cached"] == 5
    assert warm == cold


@pytest.mark.slow
def test_em3d_cache_share_monotone(tmp_path):
    result = run_sweep(get_sweep("em3d-cache"), jobs=1,
                       cache=ResultCache(tmp_path))
    assert result.all_ok, result.checks


@pytest.mark.slow
def test_gauss_speedup_monotone_with_crossover(tmp_path):
    result = run_sweep(get_sweep("gauss-speedup"), jobs=1,
                       cache=ResultCache(tmp_path))
    assert result.all_ok, result.checks
    [probe] = result.crossovers
    assert probe["crossed"] is True
    assert 4 < probe["at"] <= 8  # SM overtakes MP late in the sweep


@pytest.mark.slow
def test_em3d_modern_mp_win_survives(tmp_path):
    """The ROADMAP's scenario-diversity question, machine-checked: the
    paper's EM3D MP win survives — and widens — on the multicore-era
    and cluster-of-multicores tables."""
    result = run_sweep(get_sweep("em3d-modern"), jobs=1,
                       cache=ResultCache(tmp_path))
    assert result.all_ok, result.checks
    xs, ratio = result.series("sm_over_mp")
    by_preset = dict(zip(xs, ratio))
    assert by_preset["paper"] < by_preset["multicore"] < by_preset["cluster"]
    assert min(ratio) > 1.0
