"""Tests for software broadcast/reduction trees."""

import numpy as np
import pytest

from repro.arch.params import MachineParams
from repro.mp.collectives import binary_children, flat_children, lopsided_children
from repro.mp.machine import MpMachine


def spanning(children, nprocs):
    seen = {0}
    frontier = [0]
    while frontier:
        node = frontier.pop()
        for child in children.get(node, []):
            assert child not in seen, "node informed twice"
            seen.add(child)
            frontier.append(child)
    return seen


@pytest.mark.parametrize("nprocs", [1, 2, 3, 8, 32, 33])
def test_flat_tree_spans(nprocs):
    assert spanning(flat_children(nprocs), nprocs) == set(range(nprocs))


@pytest.mark.parametrize("nprocs", [1, 2, 3, 8, 32, 33])
def test_binary_tree_spans(nprocs):
    assert spanning(binary_children(nprocs), nprocs) == set(range(nprocs))


@pytest.mark.parametrize("nprocs", [1, 2, 3, 8, 32, 33])
def test_lopsided_tree_spans(nprocs):
    children = lopsided_children(nprocs, send_gap=45, hop_latency=200)
    assert spanning(children, nprocs) == set(range(nprocs))


def test_lopsided_root_has_more_children_than_binary():
    """The lop-sided shape: early senders keep sending."""
    children = lopsided_children(32, send_gap=45, hop_latency=200)
    assert len(children[0]) > 2


def test_lopsided_depth_beats_flat():
    """Completion time: lop-sided beats flat for realistic parameters."""
    def completion(children, gap, lat):
        ready = {0: 0}
        order = [0]
        while order:
            node = order.pop(0)
            for i, child in enumerate(children.get(node, [])):
                ready[child] = ready[node] + (i + 1) * gap + lat
                order.append(child)
        return max(ready.values())

    gap, lat = 45, 200
    lop = completion(lopsided_children(32, gap, lat), gap, lat)
    flat = completion(flat_children(32), gap, lat)
    binary = completion(binary_children(32), gap, lat)
    assert lop < binary < flat


@pytest.fixture
def machine8():
    return MpMachine(MachineParams.paper(num_processors=8), seed=3)


def test_value_broadcast(machine8):
    got = {}

    def program(ctx):
        value = 99.5 if ctx.pid == 3 else None
        result = yield from ctx.coll.broadcast(value, root=3)
        got[ctx.pid] = result

    machine8.run(program)
    assert got == {pid: 99.5 for pid in range(8)}


def test_reduce_max_with_index(machine8):
    got = {}

    def program(ctx):
        local = (float(ctx.pid * 7 % 5), ctx.pid)  # (value, index)
        result = yield from ctx.coll.reduce(local, max, root=0)
        got[ctx.pid] = result

    machine8.run(program)
    values = [(float(p * 7 % 5), p) for p in range(8)]
    assert got[0] == max(values)
    assert all(got[p] is None for p in range(1, 8))


def test_allreduce_sum(machine8):
    got = {}

    def program(ctx):
        result = yield from ctx.coll.allreduce(ctx.pid, lambda a, b: a + b)
        got[ctx.pid] = result

    machine8.run(program)
    assert set(got.values()) == {sum(range(8))}


def test_successive_collectives_keep_rounds_separate(machine8):
    got = {}

    def program(ctx):
        a = yield from ctx.coll.broadcast(
            "first" if ctx.pid == 0 else None, root=0
        )
        b = yield from ctx.coll.broadcast(
            "second" if ctx.pid == 1 else None, root=1
        )
        got[ctx.pid] = (a, b)

    machine8.run(program)
    assert set(got.values()) == {("first", "second")}


def test_bulk_broadcast_moves_array(machine8):
    got = {}

    def program(ctx):
        ctx.coll.setup_bulk(max_elems=32)
        data = np.arange(20.0) if ctx.pid == 2 else None
        values = yield from ctx.coll.bulk_broadcast(data, root=2)
        got[ctx.pid] = np.array(values)

    machine8.run(program)
    for pid in range(8):
        assert (got[pid] == np.arange(20.0)).all()


def test_bulk_broadcast_varying_roots_and_sizes(machine8):
    got = {}

    def program(ctx):
        ctx.coll.setup_bulk(max_elems=16)
        collected = []
        for root in (0, 5, 0, 3):
            size = 4 + root
            data = np.full(size, float(root)) if ctx.pid == root else None
            values = yield from ctx.coll.bulk_broadcast(data, root=root)
            collected.append(np.array(values))
        got[ctx.pid] = collected

    machine8.run(program)
    for pid in range(8):
        for i, root in enumerate((0, 5, 0, 3)):
            assert got[pid][i].size == 4 + root
            assert (got[pid][i] == root).all()


def test_bulk_without_setup_raises(machine8):
    def program(ctx):
        yield from ctx.coll.bulk_broadcast(np.zeros(4), root=0)

    with pytest.raises(Exception):
        machine8.run(program)


def test_strategy_affects_cost():
    """A broadcast's latency: lop-sided < binary < flat (32 procs).

    One broadcast per run: the lop-sided tree optimizes the latency of a
    single operation (the paper's use case — each Gauss broadcast gates
    dependent work). Back-to-back unsynchronized broadcasts would instead
    measure pipelined throughput, where shallower fan-out wins.
    """
    def program(ctx):
        value = 1.0 if ctx.pid == 0 else None
        yield from ctx.coll.broadcast(value, root=0)

    totals = {}
    for strategy in ("flat", "lopsided", "binary"):
        machine = MpMachine(
            MachineParams.paper(num_processors=32),
            seed=3,
            collective_strategy=strategy,
        )
        result = machine.run(program)
        totals[strategy] = result.elapsed_cycles
    assert totals["lopsided"] < totals["binary"] < totals["flat"]


def test_reduce_folds_each_contribution_exactly_once(machine8):
    """Tuple concatenation looks non-commutative to the tree: whatever
    fold order the tree picks, every contribution must appear exactly
    once in the root's result."""
    got = {}

    def program(ctx):
        result = yield from ctx.coll.reduce(
            (ctx.pid,), lambda a, b: a + b, root=2
        )
        got[ctx.pid] = result

    machine8.run(program)
    assert sorted(got[2]) == list(range(8))
    assert all(got[p] is None for p in range(8) if p != 2)


@pytest.mark.parametrize("strategy", ["flat", "binary", "lopsided"])
def test_float_sum_deterministic_per_strategy(strategy):
    """Floating-point addition is order-sensitive; each tree shape must
    fold operands in a fixed order (bit-identical across runs) and stay
    within rounding of the true sum."""
    import math

    values = [(-1.0) ** p * 10.0 ** (p % 5) for p in range(8)]
    exact = math.fsum(values)

    def program(ctx):
        result = yield from ctx.coll.allreduce(
            values[ctx.pid], lambda a, b: a + b
        )
        return result

    results = []
    for _ in range(2):
        machine = MpMachine(
            MachineParams.paper(num_processors=8),
            seed=3,
            collective_strategy=strategy,
        )
        outputs = machine.run(program).outputs
        assert len(set(outputs)) == 1  # allreduce agrees everywhere
        results.append(outputs[0])
    assert results[0] == results[1]  # bit-identical across runs
    assert results[0] == pytest.approx(exact, rel=1e-12)
