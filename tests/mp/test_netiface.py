"""Unit tests for the network-interface model."""

import pytest

from repro.mp.netiface import NetworkInterface, Packet


def test_packet_defaults_and_repr():
    p = Packet(src=0, dest=1, tag="h", payload=(1, 2))
    assert p.count == 1
    assert "0->1" in repr(p)


def test_train_requires_positive_count():
    with pytest.raises(ValueError):
        Packet(0, 1, "h", None, count=0)


def test_fifo_order():
    ni = NetworkInterface(0)
    a = Packet(1, 0, "a", None)
    b = Packet(2, 0, "b", None)
    ni.enqueue(a)
    ni.enqueue(b)
    assert ni.status() is True
    assert ni.dequeue() is a
    assert ni.dequeue() is b
    assert ni.dequeue() is None
    assert ni.status() is False


def test_pending_counts_train_packets():
    ni = NetworkInterface(0)
    ni.enqueue(Packet(1, 0, "d", None, count=5))
    assert ni.pending() == 5
    assert ni.packets_enqueued == 5
    ni.dequeue()
    assert ni.packets_dequeued == 5


def test_arrival_gate_pulses():
    ni = NetworkInterface(0)
    woke = []
    ni.arrival_gate.park(lambda: woke.append(True))
    ni.enqueue(Packet(1, 0, "x", None))
    assert woke == [True]
