"""Tests for the active-message layer."""

import pytest

from repro.mp.machine import DeadlockError
from repro.stats.categories import MpCat


def test_am_roundtrip(machine2):
    received = []

    def on_ping(ctx, packet):
        received.append((ctx.pid, packet.src, packet.payload))
        return
        yield

    def program(ctx):
        ctx.am.register("ping", on_ping)
        yield from ctx.barrier()  # handlers registered everywhere
        if ctx.pid == 0:
            yield from ctx.am.send(1, "ping", 42, 43)
        else:
            yield from ctx.poll_wait(lambda: received)

    machine2.run(program)
    assert received == [(1, 0, (42, 43))]


def test_am_counts_and_bytes(machine2):
    def on_msg(ctx, packet):
        return
        yield

    def program(ctx):
        ctx.am.register("msg", on_msg)
        yield from ctx.barrier()
        if ctx.pid == 0:
            yield from ctx.am.send(1, "msg", 5, data_bytes=8)
            yield from ctx.barrier()
        else:
            yield from ctx.poll_wait(lambda: ctx.ni.packets_dequeued >= 1)
            yield from ctx.barrier()

    result = machine2.run(program)
    sender = result.board.procs[0]
    assert sender.counts["active_messages"] == 1
    assert sender.counts["messages_sent"] == 1
    assert sender.counts["data_bytes"] == 8
    assert sender.counts["control_bytes"] == 12  # 20-byte packet - 8 data


def test_am_latency_is_network_plus_overheads(machine2):
    arrival_time = {}

    def on_t(ctx, packet):
        arrival_time[ctx.pid] = ctx.engine.now
        return
        yield

    def program(ctx):
        ctx.am.register("t", on_t)
        if ctx.pid == 0:
            yield from ctx.am.send(1, "t")
        else:
            yield from ctx.poll_wait(lambda: 1 in arrival_time)

    machine2.run(program)
    # send: lib 25 + inject 20; network 100; receiver: status 5 + recv 15
    # + handler 35: at least 200 cycles in total.
    assert arrival_time[1] >= 25 + 20 + 100 + 5 + 15


def test_unknown_handler_raises(machine2):
    def program(ctx):
        if ctx.pid == 0:
            yield from ctx.am.send(1, "nope")
        yield from ctx.barrier()
        if ctx.pid == 1:
            yield from ctx.drain_polls()

    with pytest.raises(Exception):
        machine2.run(program)


def test_duplicate_handler_rejected(machine2):
    ctx = machine2.contexts[0]
    ctx.am.register("dup", lambda c, p: iter(()))
    with pytest.raises(ValueError):
        ctx.am.register("dup", lambda c, p: iter(()))


def test_oversized_am_rejected(machine2):
    def program(ctx):
        if ctx.pid == 0:
            yield from ctx.am.send(1, "x", data_bytes=17)

    with pytest.raises(Exception):
        machine2.run(program)


def test_deadlock_detection(machine2):
    def program(ctx):
        if ctx.pid == 0:
            yield from ctx.poll_wait(lambda: False)  # waits forever

    with pytest.raises(DeadlockError):
        machine2.run(program)


def test_waiting_time_lands_in_lib_comp(machine2):
    done = []

    def on_go(ctx, packet):
        done.append(True)
        return
        yield

    def program(ctx):
        ctx.am.register("go", on_go)
        if ctx.pid == 1:
            yield from ctx.poll_wait(lambda: done)
        else:
            yield from ctx.compute(5000)
            yield from ctx.am.send(1, "go")

    result = machine2.run(program)
    waiter = result.board.procs[1]
    # Processor 1 idles ~5000 cycles; that time must appear as Lib Comp.
    assert waiter.cycles[MpCat.LIB_COMPUTE] > 4000
