"""Tests of the MpContext programming surface (compute, memory, barrier)."""

import numpy as np

from repro.stats.categories import MpCat


def run(machine, program, *args):
    return machine.run(program, *args)


def test_compute_charges_and_advances_time(machine2):
    def program(ctx):
        yield from ctx.compute(123)

    result = run(machine2, program)
    assert result.elapsed_cycles == 123
    assert result.board.mean_cycles(MpCat.COMPUTE) == 123


def test_compute_flops_uses_cost_model(machine2):
    def program(ctx):
        yield from ctx.compute_flops(10)

    result = run(machine2, program)
    expected = machine2.costs.flops(10)
    assert result.board.mean_cycles(MpCat.COMPUTE) == expected


def test_read_miss_then_hit(machine2):
    def program(ctx):
        region = ctx.alloc("buf", 8)  # 64 bytes = 2 blocks
        values = yield from ctx.read(region)  # cold: 2 misses (+1 TLB)
        assert values.size == 8
        yield from ctx.read(region)  # warm: hits

    result = run(machine2, program)
    assert result.board.mean_count("local_misses") == 2
    assert result.board.mean_count("tlb_misses") == 1
    common = machine2.params.common
    expected = 2 * common.local_miss_total_cycles + common.tlb_miss_cycles
    assert result.board.mean_cycles(MpCat.LOCAL_MISS) == expected


def test_write_stores_values(machine2):
    seen = {}

    def program(ctx):
        region = ctx.alloc("v", 4)
        yield from ctx.write(region, 0, values=np.arange(4.0))
        seen[ctx.pid] = region.np.copy()

    run(machine2, program)
    assert (seen[0] == [0, 1, 2, 3]).all()


def test_read_gather_touches_unique_blocks(machine2):
    def program(ctx):
        region = ctx.alloc("g", 64)  # 16 blocks of 4 doubles
        values = yield from ctx.read_gather(region, [0, 1, 2, 3, 16])
        assert values.size == 5

    result = run(machine2, program)
    # Elements 0-3 share one block; element 16 is another: 2 misses.
    assert result.board.mean_count("local_misses") == 2


def test_lib_context_remaps_misses(machine2):
    def program(ctx):
        region = ctx.alloc("buf", 8)
        with ctx.stats.context("lib"):
            yield from ctx.read(region)
            yield from ctx.compute(50)

    result = run(machine2, program)
    assert result.board.mean_cycles(MpCat.LIB_COMPUTE) == 50
    assert result.board.mean_cycles(MpCat.LIB_MISS) > 0
    assert result.board.mean_cycles(MpCat.COMPUTE) == 0
    assert result.board.mean_cycles(MpCat.LOCAL_MISS) == 0


def test_barrier_releases_all_after_latency(machine4):
    finish = {}

    def program(ctx):
        yield from ctx.compute(ctx.pid * 10)  # staggered arrivals
        yield from ctx.barrier()
        finish[ctx.pid] = ctx.engine.now

    result = run(machine4, program)
    # Last arrival at 30, release at 130 for everyone.
    assert set(finish.values()) == {130}
    # Earliest arrival waited the longest.
    waits = [p.cycles.get(MpCat.BARRIER, 0) for p in result.board.procs]
    assert waits[0] == 130 and waits[3] == 100


def test_elapsed_is_last_finisher(machine2):
    def program(ctx):
        yield from ctx.compute(100 if ctx.pid == 0 else 500)

    result = run(machine2, program)
    assert result.elapsed_cycles == 500


def test_outputs_collected_per_processor(machine4):
    def program(ctx):
        yield from ctx.compute(1)
        return ctx.pid * 2

    result = run(machine4, program)
    assert result.outputs == [0, 2, 4, 6]
