"""Tests for interrupt-driven message delivery (the NI interrupt mask)."""

import pytest

from repro.stats.categories import MpCat


def test_interrupt_handler_runs_without_polling(machine2):
    """A masked tag's handler fires while the receiver only computes."""
    received = []

    def on_urgent(ctx, packet):
        received.append((ctx.pid, ctx.engine.now, packet.payload))
        return
        yield

    def program(ctx):
        ctx.am.register("urgent", on_urgent)
        if ctx.pid == 1:
            ctx.enable_interrupts("urgent")
        yield from ctx.barrier()
        if ctx.pid == 0:
            yield from ctx.am.send(1, "urgent", 7)
            yield from ctx.compute(10)
        else:
            # Long compute with NO poll calls at all.
            yield from ctx.compute(100_000)

    machine2.run(program)
    assert received and received[0][0] == 1
    assert received[0][2] == (7,)
    # Serviced promptly, not at the end of the long compute.
    assert received[0][1] < 10_000


def test_unmasked_tags_still_polled(machine2):
    received = []

    def on_plain(ctx, packet):
        received.append(ctx.engine.now)
        return
        yield

    def program(ctx):
        ctx.am.register("plain", on_plain)
        if ctx.pid == 1:
            ctx.enable_interrupts("other-tag")  # mask does NOT cover "plain"
        yield from ctx.barrier()
        if ctx.pid == 0:
            yield from ctx.am.send(1, "plain")
        else:
            yield from ctx.poll_wait(lambda: received)

    machine2.run(program)
    assert received


def test_interrupt_dispatch_cost_charged(machine2):
    def on_x(ctx, packet):
        return
        yield

    def program(ctx):
        ctx.am.register("x", on_x)
        if ctx.pid == 1:
            ctx.enable_interrupts("x")
        yield from ctx.barrier()
        if ctx.pid == 0:
            for _ in range(5):
                yield from ctx.am.send(1, "x")
        yield from ctx.compute(50_000)  # time for service to complete

    result = machine2.run(program)
    receiver = result.board.procs[1]
    mp = machine2.params.mp
    # At least 5 kernel-trap dispatches' worth of lib time.
    assert receiver.cycles[MpCat.LIB_COMPUTE] >= 5 * mp.interrupt_dispatch_cycles
    assert machine2.nodes[1].ni.interrupts_raised == 5


def test_disable_interrupts_reverts_to_polling(machine2):
    received = []

    def on_t(ctx, packet):
        received.append(True)
        return
        yield

    def program(ctx):
        ctx.am.register("t", on_t)
        if ctx.pid == 1:
            ctx.enable_interrupts("t")
            ctx.disable_interrupts("t")
        yield from ctx.barrier()
        if ctx.pid == 0:
            yield from ctx.am.send(1, "t")
        else:
            yield from ctx.poll_wait(lambda: received)

    machine2.run(program)
    assert received
    assert machine2.nodes[1].ni.interrupts_raised == 0


def test_interrupt_wakes_poll_wait(machine2):
    """A poll_wait predicate satisfied by an ISR handler resumes."""
    state = {"flag": False}

    def on_set(ctx, packet):
        state["flag"] = True
        return
        yield

    def program(ctx):
        ctx.am.register("set", on_set)
        if ctx.pid == 1:
            ctx.enable_interrupts("set")
        yield from ctx.barrier()
        if ctx.pid == 0:
            yield from ctx.compute(2_000)
            yield from ctx.am.send(1, "set")
        else:
            yield from ctx.poll_wait(lambda: state["flag"])

    machine2.run(program)  # must terminate (no deadlock)
    assert state["flag"]
