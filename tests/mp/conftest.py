"""Shared fixtures for message-passing machine tests."""

import pytest

from repro.arch.params import MachineParams
from repro.mp.machine import MpMachine


@pytest.fixture
def machine4():
    """A small 4-processor message-passing machine."""
    return MpMachine(MachineParams.paper(num_processors=4), seed=7)


@pytest.fixture
def machine2():
    return MpMachine(MachineParams.paper(num_processors=2), seed=7)
