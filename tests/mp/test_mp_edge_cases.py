"""Edge cases of the message-passing machine surface."""

import numpy as np
import pytest

from repro.stats.categories import MpCat


def test_zero_compute_is_free(machine2):
    def program(ctx):
        yield from ctx.compute(0)
        yield from ctx.compute(-3)  # rounds to nothing

    result = machine2.run(program)
    assert result.elapsed_cycles == 0


def test_empty_read_range(machine2):
    def program(ctx):
        region = ctx.alloc("r", 8)
        values = yield from ctx.read(region, 3, 3)
        assert values.size == 0

    result = machine2.run(program)
    assert result.board.mean_count("local_misses") == 0


def test_write_with_stop_only_touches_without_values(machine2):
    def program(ctx):
        region = ctx.alloc("r", 8, fill=5.0)
        yield from ctx.write(region, 0, 8)
        assert (region.np == 5.0).all()  # touch-only write keeps data

    result = machine2.run(program)
    assert result.board.mean_count("local_misses") > 0


def test_legacy_keyword_rejected_with_hint(machine2):
    def program(ctx):
        region = ctx.alloc("r", 8)
        yield from ctx.write(region, 0, hi=8)

    with pytest.raises(Exception) as excinfo:
        machine2.run(program)
    assert "did you mean 'stop'" in str(excinfo.value)


def test_write_without_values_or_hi_rejected(machine2):
    def program(ctx):
        region = ctx.alloc("r", 8)
        yield from ctx.write(region, 0)

    with pytest.raises(Exception):
        machine2.run(program)


def test_packets_for_boundaries(machine2):
    ctx = machine2.contexts[0]
    assert ctx.packets_for(0) == 1
    assert ctx.packets_for(1) == 1
    assert ctx.packets_for(16) == 1
    assert ctx.packets_for(17) == 2
    assert ctx.packets_for(160) == 10


def test_poll_on_empty_fifo_returns_false(machine2):
    outcome = {}

    def program(ctx):
        if ctx.pid == 0:
            outcome["polled"] = yield from ctx.poll()

    machine2.run(program)
    assert outcome["polled"] is False


def test_default_control_bytes_cover_unused_payload(machine2):
    def on_h(ctx, packet):
        return
        yield

    def program(ctx):
        ctx.am.register("h", on_h)
        yield from ctx.barrier()
        if ctx.pid == 0:
            # 3 packets, 40 data bytes: control = 3*20 - 40 = 20.
            yield from ctx.inject(1, "h", None, npackets=3, data_bytes=40)
        else:
            yield from ctx.poll_wait(lambda: ctx.ni.packets_dequeued >= 3)

    result = machine2.run(program)
    sender = result.board.procs[0]
    assert sender.counts["messages_sent"] == 3
    assert sender.counts["data_bytes"] == 40
    assert sender.counts["control_bytes"] == 20


def test_train_receive_cost_scales_with_count(machine2):
    def on_h(ctx, packet):
        return
        yield

    def program(ctx):
        ctx.am.register("h", on_h)
        yield from ctx.barrier()
        if ctx.pid == 0:
            yield from ctx.inject(1, "h", None, npackets=10, data_bytes=160)
        else:
            yield from ctx.poll_wait(lambda: ctx.ni.packets_dequeued >= 10)

    result = machine2.run(program)
    receiver = result.board.procs[1]
    mp = machine2.params.mp
    assert receiver.cycles[MpCat.NETWORK_ACCESS] >= 10 * mp.recv_packet_cycles


def test_am_send_train_counts_one_active_message(machine2):
    def on_h(ctx, packet):
        return
        yield

    def program(ctx):
        ctx.am.register("h", on_h)
        yield from ctx.barrier()
        if ctx.pid == 0:
            yield from ctx.am.send_train(1, "h", ("x",), nbytes=100)
        else:
            yield from ctx.poll_wait(lambda: ctx.ni.packets_dequeued >= 7)

    result = machine2.run(program)
    sender = result.board.procs[0]
    assert sender.counts["active_messages"] == 1
    assert sender.counts["messages_sent"] == 7  # ceil(100 / 16)


def test_drain_polls_handles_everything_queued(machine2):
    hits = []

    def on_h(ctx, packet):
        hits.append(packet.payload)
        return
        yield

    def program(ctx):
        ctx.am.register("h", on_h)
        yield from ctx.barrier()
        if ctx.pid == 0:
            for i in range(4):
                yield from ctx.am.send(1, "h", i)
            yield from ctx.barrier()
        else:
            yield from ctx.poll_wait(lambda: ctx.ni.packets_enqueued >= 4)
            yield from ctx.drain_polls()
            assert not ctx.ni.status()
            yield from ctx.barrier()

    machine2.run(program)
    assert sorted(hits) == [(0,), (1,), (2,), (3,)]


def test_bad_destination_rejected(machine2):
    def program(ctx):
        if ctx.pid == 0:
            yield from ctx.inject(99, "x", None)

    with pytest.raises(Exception):
        machine2.run(program)


def test_region_names_are_per_node(machine4):
    """Each node can allocate the same logical name."""

    def program(ctx):
        region = ctx.alloc("same_name", 4)
        yield from ctx.write(region, 0, values=[float(ctx.pid)] * 4)
        return float(region.np[0])

    result = machine4.run(program)
    assert result.outputs == [0.0, 1.0, 2.0, 3.0]
