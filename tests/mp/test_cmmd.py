"""Tests for the CMMD-style channel library."""

import numpy as np
import pytest

from repro.stats.categories import MpCat


def test_send_receive_block_moves_data(machine2):
    received = {}

    def program(ctx):
        buf = ctx.alloc("buf", 16)
        if ctx.pid == 0:
            yield from ctx.write(buf, 0, values=np.arange(16.0))
            yield from ctx.cmmd.send_block(1, buf)
        else:
            yield from ctx.cmmd.receive_block(0, buf)
            received[ctx.pid] = buf.np.copy()

    machine2.run(program)
    assert (received[1] == np.arange(16.0)).all()


def test_channel_reuse_across_rounds(machine2):
    rounds = 3
    results = []

    def program(ctx):
        buf = ctx.alloc("buf", 8)
        if ctx.pid == 1:
            channel = yield from ctx.cmmd.offer_channel(0, buf, key="loop")
            for _ in range(rounds):
                yield from ctx.cmmd.wait_channel(channel)
                results.append(buf.np.copy())
        else:
            channel = yield from ctx.cmmd.accept_channel(1, key="loop")
            for r in range(rounds):
                yield from ctx.cmmd.write_channel(channel, np.full(8, float(r)))
            assert channel.writes == rounds

    machine2.run(program)
    assert len(results) == rounds
    for r, snapshot in enumerate(results):
        assert (snapshot == r).all()


def test_packetization_counts(machine2):
    def program(ctx):
        buf = ctx.alloc("buf", 100)  # 800 bytes -> 50 packets of 16B
        if ctx.pid == 0:
            yield from ctx.cmmd.send_block(1, buf)
        else:
            yield from ctx.cmmd.receive_block(0, buf)

    result = machine2.run(program)
    sender = result.board.procs[0]
    assert sender.counts["channel_writes"] == 1
    # 50 data packets + 0 further control packets from this side.
    assert sender.counts["messages_sent"] == 50
    assert sender.counts["data_bytes"] == 800
    assert sender.counts["control_bytes"] == 50 * 4
    receiver = result.board.procs[1]
    # The receiver's offer active message is control-only.
    assert receiver.counts["active_messages"] == 1
    assert receiver.counts["control_bytes"] == 20


def test_partial_window_write(machine2):
    def program(ctx):
        buf = ctx.alloc("buf", 8, fill=-1.0)
        if ctx.pid == 1:
            channel = yield from ctx.cmmd.offer_channel(0, buf, key="part")
            yield from ctx.cmmd.wait_channel(channel, nbytes=4 * 8)
            assert (buf.np[:4] == [9, 9, 9, 9]).all()
            assert (buf.np[4:] == -1).all()
        else:
            channel = yield from ctx.cmmd.accept_channel(1, key="part")
            yield from ctx.cmmd.write_channel(channel, np.full(4, 9.0))

    machine2.run(program)


def test_write_beyond_window_rejected(machine2):
    def program(ctx):
        buf = ctx.alloc("buf", 4)
        if ctx.pid == 1:
            yield from ctx.cmmd.offer_channel(0, buf, key="w")
            yield from ctx.poll_wait(lambda: False)  # never satisfied
        else:
            channel = yield from ctx.cmmd.accept_channel(1, key="w")
            yield from ctx.cmmd.write_channel(channel, np.zeros(5))

    with pytest.raises(Exception):
        machine2.run(program)


def test_transfer_time_includes_per_packet_costs(machine2):
    def program(ctx):
        buf = ctx.alloc("buf", 20)  # 160 bytes -> 10 packets
        if ctx.pid == 0:
            yield from ctx.cmmd.send_block(1, buf)
        else:
            yield from ctx.cmmd.receive_block(0, buf)

    result = machine2.run(program)
    mp = machine2.params.mp
    sender = result.board.procs[0]
    # NI time: the offer handshake is polled plus 10 packet injections.
    assert sender.cycles[MpCat.NETWORK_ACCESS] >= 10 * mp.send_packet_cycles
    # Library time includes per-packet send bookkeeping.
    assert sender.cycles[MpCat.LIB_COMPUTE] >= 10 * mp.lib_send_packet_cycles


def test_bidirectional_exchange(machine2):
    """Both directions at once — no deadlock with asynchronous writes."""
    seen = {}

    def program(ctx):
        other = 1 - ctx.pid
        out = ctx.alloc("out", 8, fill=float(ctx.pid))
        inbox = ctx.alloc("in", 8)
        recv = yield from ctx.cmmd.offer_channel(other, inbox, key="x")
        send = yield from ctx.cmmd.accept_channel(other, key="x")
        values = yield from ctx.read(out)
        yield from ctx.cmmd.write_channel(send, values)
        yield from ctx.cmmd.wait_channel(recv)
        seen[ctx.pid] = inbox.np.copy()

    machine2.run(program)
    assert (seen[0] == 1.0).all()
    assert (seen[1] == 0.0).all()
