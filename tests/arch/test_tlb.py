"""Unit tests for the FIFO TLB."""

import pytest

from repro.arch.tlb import Tlb


def test_miss_then_hit_same_page():
    tlb = Tlb(entries=4, page_bytes=4096)
    assert tlb.access(0) is False
    assert tlb.access(100) is True
    assert tlb.access(4095) is True
    assert tlb.access(4096) is False
    assert tlb.misses == 2
    assert tlb.hits == 2


def test_fifo_eviction_order():
    tlb = Tlb(entries=2, page_bytes=4096)
    tlb.access(0)  # page 0
    tlb.access(4096)  # page 1
    tlb.access(0)  # hit: must NOT refresh page 0 (FIFO, not LRU)
    tlb.access(8192)  # page 2 evicts page 0 (the oldest)
    assert tlb.contains(4096)
    assert not tlb.contains(0)


def test_capacity_limit():
    tlb = Tlb(entries=3, page_bytes=4096)
    for i in range(5):
        tlb.access(i * 4096)
    resident = sum(tlb.contains(i * 4096) for i in range(5))
    assert resident == 3


def test_flush():
    tlb = Tlb(entries=4, page_bytes=4096)
    tlb.access(0)
    tlb.flush()
    assert not tlb.contains(0)


def test_zero_entries_rejected():
    with pytest.raises(ValueError):
        Tlb(entries=0, page_bytes=4096)


def test_version_counts_installs_not_hits():
    """Probe-verdict memos rely on: FIFO hits never move the version."""
    tlb = Tlb(4, 4096)
    v = tlb.version
    assert tlb.access(0) is False  # miss installs the page
    assert tlb.version > v
    v = tlb.version
    assert tlb.access(0) is True  # hit
    assert tlb.version == v
    tlb.flush()
    assert tlb.version > v
