"""Unit tests for the set-associative cache."""

import numpy as np
import pytest

from repro.arch.cache import Cache, CacheError, LineState


def make_cache(size=1024, assoc=2, block=32, seed=0):
    return Cache(size, assoc, block, np.random.default_rng(seed))


def test_geometry():
    cache = make_cache(size=1024, assoc=2, block=32)
    assert cache.num_sets == 16


def test_miss_then_hit():
    cache = make_cache()
    assert cache.lookup(0) is LineState.INVALID
    cache.insert(0, LineState.SHARED)
    assert cache.lookup(0) is LineState.SHARED
    assert cache.misses == 1
    assert cache.hits == 1


def test_peek_does_not_count():
    cache = make_cache()
    cache.peek(0)
    assert cache.hits == 0 and cache.misses == 0


def test_unaligned_address_rejected():
    cache = make_cache()
    with pytest.raises(CacheError):
        cache.lookup(5)


def test_eviction_when_set_full():
    cache = make_cache(size=64, assoc=2, block=32)  # 1 set, 2 ways
    cache.insert(0, LineState.SHARED)
    cache.insert(32, LineState.SHARED)
    victim = cache.insert(64, LineState.SHARED)
    assert victim is not None
    assert victim[0] in (0, 32)
    assert cache.resident_blocks() == 2


def test_eviction_callback_fires():
    cache = make_cache(size=64, assoc=2, block=32)
    evicted = []
    cache.on_evict = lambda addr, state: evicted.append((addr, state))
    cache.insert(0, LineState.EXCLUSIVE)
    cache.insert(32, LineState.SHARED)
    cache.insert(64, LineState.SHARED)
    assert len(evicted) == 1
    assert evicted[0][1] in (LineState.EXCLUSIVE, LineState.SHARED)


def test_insert_existing_updates_state_without_eviction():
    cache = make_cache(size=64, assoc=2, block=32)
    cache.insert(0, LineState.SHARED)
    cache.insert(32, LineState.SHARED)
    victim = cache.insert(0, LineState.EXCLUSIVE)
    assert victim is None
    assert cache.peek(0) is LineState.EXCLUSIVE


def test_set_state_on_missing_line_raises():
    cache = make_cache()
    with pytest.raises(CacheError):
        cache.set_state(0, LineState.EXCLUSIVE)


def test_invalidate_returns_prior_state():
    cache = make_cache()
    cache.insert(0, LineState.EXCLUSIVE)
    assert cache.invalidate(0) is LineState.EXCLUSIVE
    assert cache.invalidate(0) is LineState.INVALID
    assert cache.peek(0) is LineState.INVALID


def test_insert_invalid_rejected():
    cache = make_cache()
    with pytest.raises(CacheError):
        cache.insert(0, LineState.INVALID)


def test_blocks_map_to_distinct_sets():
    cache = make_cache(size=1024, assoc=2, block=32)  # 16 sets
    # 17 consecutive blocks: the first and the 17th share a set.
    for i in range(16):
        cache.insert(i * 32, LineState.SHARED)
    assert cache.resident_blocks() == 16
    cache.insert(16 * 32, LineState.SHARED)
    # Same set as block 0, which may or may not be evicted; others intact.
    assert cache.resident_blocks() == 16 or cache.resident_blocks() == 17


def test_random_replacement_is_seeded():
    def churn(seed):
        cache = make_cache(size=64, assoc=2, block=32, seed=seed)
        victims = []
        cache.on_evict = lambda addr, _s: victims.append(addr)
        for i in range(40):
            cache.insert(i * 32, LineState.SHARED)
        return victims

    assert churn(1) == churn(1)
    assert churn(1) != churn(2)


def test_flush_empties_cache():
    cache = make_cache()
    cache.insert(0, LineState.SHARED)
    cache.flush()
    assert cache.resident_blocks() == 0


def test_version_counts_state_changes_only():
    """Probe-verdict memos rely on: hits never move the version."""
    cache = make_cache()
    v = cache.version
    cache.insert(0, LineState.SHARED)
    assert cache.version > v
    v = cache.version
    cache.lookup(0)  # hit: no state change
    assert cache.version == v
    cache.set_state(0, LineState.EXCLUSIVE)
    assert cache.version > v
    v = cache.version
    cache.invalidate(0)
    assert cache.version > v
    v = cache.version
    cache.invalidate(0)  # already invalid: nothing changed
    assert cache.version == v
    cache.flush()
    assert cache.version > v
