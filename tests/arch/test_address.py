"""Unit tests for address-range block/page decomposition."""

import pytest

from repro.arch.address import AddressRange, align_up, block_span


def test_block_span_aligned_range():
    assert list(block_span(0, 64, 32)) == [0, 32]


def test_block_span_straddles_boundaries():
    # Bytes [30, 70) touch blocks 0, 32, 64.
    assert list(block_span(30, 40, 32)) == [0, 32, 64]


def test_block_span_single_byte():
    assert list(block_span(33, 1, 32)) == [32]


def test_block_span_empty():
    assert list(block_span(100, 0, 32)) == []


def test_address_range_end():
    r = AddressRange(10, 20)
    assert r.end == 30


def test_address_range_blocks_and_pages():
    r = AddressRange(4090, 10)  # straddles a 4K page boundary
    assert list(r.pages(4096)) == [0, 4096]
    assert list(r.blocks(32)) == [4064, 4096]


def test_negative_range_rejected():
    with pytest.raises(ValueError):
        AddressRange(-1, 5)
    with pytest.raises(ValueError):
        AddressRange(0, -5)


def test_align_up():
    assert align_up(0, 32) == 0
    assert align_up(1, 32) == 32
    assert align_up(32, 32) == 32
    assert align_up(33, 32) == 64
