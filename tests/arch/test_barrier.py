"""Unit tests for the hardware barrier."""

import pytest

from repro.arch.barrier import HardwareBarrier
from repro.sim.engine import Engine
from repro.sim.process import Delay, Process


def run_barrier(arrival_delays, latency=100):
    engine = Engine()
    barrier = HardwareBarrier(engine, len(arrival_delays), latency)
    releases = {}

    def body(pid, delay):
        yield Delay(delay)
        waited = yield from barrier.arrive()
        releases[pid] = (engine.now, waited)

    for pid, delay in enumerate(arrival_delays):
        Process(engine, body(pid, delay))
    engine.run()
    return releases, barrier


def test_release_is_latency_after_last_arrival():
    releases, _b = run_barrier([0, 30, 70])
    assert all(t == 170 for t, _w in releases.values())


def test_wait_times_reflect_arrival_order():
    releases, _b = run_barrier([0, 30, 70])
    assert releases[0][1] == 170
    assert releases[1][1] == 140
    assert releases[2][1] == 100


def test_single_participant():
    releases, _b = run_barrier([5], latency=100)
    assert releases[0] == (105, 100)


def test_barrier_is_reusable_across_rounds():
    engine = Engine()
    barrier = HardwareBarrier(engine, 2, 10)
    log = []

    def body(pid):
        for round_number in range(3):
            yield Delay(pid * 5)
            yield from barrier.arrive()
            log.append((round_number, pid, engine.now))

    Process(engine, body(0))
    Process(engine, body(1))
    engine.run()
    assert barrier.rounds_completed == 3
    # Within each round, both released at the same instant.
    by_round = {}
    for round_number, _pid, t in log:
        by_round.setdefault(round_number, set()).add(t)
    assert all(len(times) == 1 for times in by_round.values())


def test_zero_participants_rejected():
    with pytest.raises(ValueError):
        HardwareBarrier(Engine(), 0, 100)
