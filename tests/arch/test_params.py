"""Transcription checks against the paper's Tables 1-3."""

import pytest

from repro.arch.params import CommonParams, MachineParams, MpParams, SmParams


def test_table1_common_hardware():
    p = CommonParams()
    assert p.cache_bytes == 256 * 1024
    assert p.cache_assoc == 4
    assert p.block_bytes == 32
    assert p.tlb_entries == 64
    assert p.page_bytes == 4096
    assert p.network_latency == 100
    assert p.barrier_latency == 100
    assert p.local_miss_cycles == 11
    assert p.dram_cycles == 10


def test_table1_derived_quantities():
    p = CommonParams()
    assert p.cache_sets == 2048
    assert p.local_miss_total_cycles == 21


def test_table2_message_passing():
    p = MpParams()
    assert p.replacement_cycles == 1
    assert p.ni_status_cycles == 5
    assert p.ni_write_tag_dest_cycles == 5
    assert p.ni_send_5_words_cycles == 15
    assert p.ni_recv_5_words_cycles == 15
    assert p.packet_bytes == 20
    assert p.packet_payload_bytes == 16
    assert p.packet_header_bytes == 4
    assert p.send_packet_cycles == 20
    assert p.recv_packet_cycles == 15


def test_table3_shared_memory():
    p = SmParams()
    assert p.self_message_cycles == 10
    assert p.shared_miss_cycles == 19
    assert p.invalidate_cycles == 3
    assert p.replacement_private_cycles == 1
    assert p.replacement_shared_clean_cycles == 5
    assert p.replacement_shared_dirty_cycles == 13
    assert p.directory_base_cycles == 10
    assert p.directory_recv_block_cycles == 8
    assert p.directory_send_msg_cycles == 5
    assert p.directory_send_block_cycles == 8
    assert p.message_bytes == 40
    assert p.block_message_control_bytes == 8


def test_paper_machine_defaults():
    m = MachineParams.paper()
    assert m.common.num_processors == 32


def test_with_cache_bytes_override():
    m = MachineParams.paper().with_cache_bytes(1024 * 1024)
    assert m.common.cache_bytes == 1024 * 1024
    assert m.common.cache_sets == 8192
    # Original untouched (frozen dataclasses).
    assert MachineParams.paper().common.cache_bytes == 256 * 1024


def test_with_processors_override():
    m = MachineParams.paper().with_processors(8)
    assert m.common.num_processors == 8


def test_invalid_cache_geometry_rejected():
    with pytest.raises(ValueError):
        CommonParams(cache_bytes=1000)  # not a multiple of assoc * block


# -- machine presets and two-level topology ----------------------------------


def test_machine_presets_registry():
    from repro.arch.params import MACHINE_PRESETS, machine_preset

    assert MACHINE_PRESETS == ("paper", "multicore", "cluster")
    for name in MACHINE_PRESETS:
        params = machine_preset(name, num_processors=16)
        assert params.common.num_processors == 16
    with pytest.raises(ValueError, match="unknown machine preset"):
        machine_preset("cray")


def test_paper_preset_is_the_paper_machine():
    from repro.arch.params import machine_preset

    assert machine_preset("paper") == MachineParams.paper()


def test_multicore_preset_shape():
    """On-chip network is cheap; DRAM is dear (the memory wall)."""
    paper = MachineParams.paper().common
    multi = MachineParams.multicore().common
    assert multi.network_latency < paper.network_latency
    assert multi.dram_cycles > paper.dram_cycles
    assert multi.cache_bytes > paper.cache_bytes
    # Flat topology: no two-level latency.
    assert multi.intra_cluster_latency is None


def test_cluster_preset_two_level_latency():
    c = MachineParams.cluster().common
    assert c.cluster_size == 8
    assert c.intra_cluster_latency is not None
    # Same cluster: cheap on-chip cost; cross-cluster: the full wire.
    assert c.message_latency(0, 7) == c.intra_cluster_latency
    assert c.message_latency(0, 8) == c.network_latency
    assert c.message_latency(8, 15) == c.intra_cluster_latency
    assert c.message_latency(7, 8) == c.network_latency


def test_flat_message_latency_matches_network_latency():
    """cluster_size=1 / intra=None is inert: the paper's flat machine."""
    c = MachineParams.paper().common
    for src, dest in ((0, 1), (0, 31), (5, 6)):
        assert c.message_latency(src, dest) == c.network_latency


def test_bad_cluster_size_rejected():
    with pytest.raises(ValueError, match="cluster_size"):
        CommonParams(cluster_size=0)
