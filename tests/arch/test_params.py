"""Transcription checks against the paper's Tables 1-3."""

import pytest

from repro.arch.params import CommonParams, MachineParams, MpParams, SmParams


def test_table1_common_hardware():
    p = CommonParams()
    assert p.cache_bytes == 256 * 1024
    assert p.cache_assoc == 4
    assert p.block_bytes == 32
    assert p.tlb_entries == 64
    assert p.page_bytes == 4096
    assert p.network_latency == 100
    assert p.barrier_latency == 100
    assert p.local_miss_cycles == 11
    assert p.dram_cycles == 10


def test_table1_derived_quantities():
    p = CommonParams()
    assert p.cache_sets == 2048
    assert p.local_miss_total_cycles == 21


def test_table2_message_passing():
    p = MpParams()
    assert p.replacement_cycles == 1
    assert p.ni_status_cycles == 5
    assert p.ni_write_tag_dest_cycles == 5
    assert p.ni_send_5_words_cycles == 15
    assert p.ni_recv_5_words_cycles == 15
    assert p.packet_bytes == 20
    assert p.packet_payload_bytes == 16
    assert p.packet_header_bytes == 4
    assert p.send_packet_cycles == 20
    assert p.recv_packet_cycles == 15


def test_table3_shared_memory():
    p = SmParams()
    assert p.self_message_cycles == 10
    assert p.shared_miss_cycles == 19
    assert p.invalidate_cycles == 3
    assert p.replacement_private_cycles == 1
    assert p.replacement_shared_clean_cycles == 5
    assert p.replacement_shared_dirty_cycles == 13
    assert p.directory_base_cycles == 10
    assert p.directory_recv_block_cycles == 8
    assert p.directory_send_msg_cycles == 5
    assert p.directory_send_block_cycles == 8
    assert p.message_bytes == 40
    assert p.block_message_control_bytes == 8


def test_paper_machine_defaults():
    m = MachineParams.paper()
    assert m.common.num_processors == 32


def test_with_cache_bytes_override():
    m = MachineParams.paper().with_cache_bytes(1024 * 1024)
    assert m.common.cache_bytes == 1024 * 1024
    assert m.common.cache_sets == 8192
    # Original untouched (frozen dataclasses).
    assert MachineParams.paper().common.cache_bytes == 256 * 1024


def test_with_processors_override():
    m = MachineParams.paper().with_processors(8)
    assert m.common.num_processors == 8


def test_invalid_cache_geometry_rejected():
    with pytest.raises(ValueError):
        CommonParams(cache_bytes=1000)  # not a multiple of assoc * block
