"""Unit tests for the computation cost model."""

from repro.arch.costs import CostModel


def test_flops_scale_linearly():
    model = CostModel()
    assert model.flops(100) == 2 * model.flops(50)


def test_zero_counts_are_free():
    model = CostModel()
    assert model.flops(0) == 0
    assert model.loop(0) == 0
    assert model.copy(0) == 0


def test_costs_are_nonnegative_ints():
    model = CostModel()
    for value in (model.flops(3.7), model.divs(1), model.int_ops(5),
                  model.loop(2.5), model.calls(1), model.copy(10)):
        assert isinstance(value, int)
        assert value >= 0


def test_copy_is_cheaper_than_flops_per_byte():
    model = CostModel()
    # Word-at-a-time copy beats recomputing: sanity of relative rates.
    assert model.copy(8) < model.flops(8)
