"""Unit tests for the write buffers: infinite (accounting) and semantic."""

import numpy as np
import pytest

from repro.arch.write_buffer import MEMORY_MODELS, StoreBuffer, WriteBuffer


def test_constant_drain_cost():
    buffer = WriteBuffer(drain_cycles=1)
    assert buffer.accept(32) == 1
    assert buffer.accept(32) == 1


def test_accounting():
    buffer = WriteBuffer()
    for _ in range(5):
        buffer.accept(32)
    assert buffer.entries_accepted == 5
    assert buffer.bytes_accepted == 160


def test_custom_drain_cost():
    buffer = WriteBuffer(drain_cycles=3)
    assert buffer.accept(64) == 3


# -- semantic store buffer (relaxed consistency) ------------------------------


class _Region:
    """Minimal stand-in: the buffer only compares regions by identity."""

    name = "r"


def test_memory_models_registry():
    assert MEMORY_MODELS == ("sc", "tso", "pc")


def test_fifo_commits_in_program_order():
    region = _Region()
    sb = StoreBuffer(ordering="fifo")
    a = sb.push_range(region, 0, np.array([1.0]), now=0)
    b = sb.push_range(region, 8, np.array([2.0]), now=0)
    assert sb.next_entry() is a
    sb.remove(a)
    assert sb.next_entry() is b
    sb.remove(b)
    assert sb.next_entry() is None
    assert sb.commits == 2 and sb.pushes == 2 and sb.max_depth == 2


def test_relaxed_reorders_across_locations_only():
    """The relaxed ordering nominates the earliest-ready *eligible*
    entry: cross-location reorder is allowed, same-location is not."""
    region = _Region()
    rng = np.random.default_rng(0)
    sb = StoreBuffer(ordering="relaxed", rng=rng, delay_bands=((0, 0),))
    older = sb.push_range(region, 0, np.array([1.0]), now=0)
    newer_same = sb.push_range(region, 0, np.array([2.0]), now=0)
    newer_other = sb.push_range(region, 50, np.array([3.0]), now=0)
    # Force the cross-location entry to look ready first.
    older.ready_time = 100
    newer_same.ready_time = 0
    newer_other.ready_time = 0
    nominee = sb.next_entry()
    assert nominee is newer_other  # same-location entry stays behind older
    assert sb.is_oldest_conflicting(newer_other)
    assert not sb.is_oldest_conflicting(newer_same)
    assert sb.is_oldest_conflicting(older)


def test_read_own_write_forwarding_range():
    region = _Region()
    sb = StoreBuffer()
    sb.push_range(region, 2, np.array([10.0, 11.0]), now=0)
    base = np.zeros(4)
    got = sb.apply_pending(region, 0, 4, base)
    assert got is not base  # copy on overlap
    assert list(got) == [0.0, 0.0, 10.0, 11.0]
    # Disjoint window: base returned untouched.
    assert sb.apply_pending(region, 10, 14, base) is base
    assert sb.forwards == 1


def test_forwarding_applies_entries_in_program_order():
    region = _Region()
    sb = StoreBuffer()
    sb.push_range(region, 0, np.array([1.0]), now=0)
    sb.push_range(region, 0, np.array([2.0]), now=0)
    got = sb.apply_pending(region, 0, 1, np.zeros(1))
    assert got[0] == 2.0  # the newer store wins


def test_gather_forwarding_scatter_entries():
    region = _Region()
    sb = StoreBuffer()
    sb.push_scatter(
        region, np.array([1, 3, 1]), np.array([5.0, 6.0, 7.0]), now=0
    )
    got = sb.apply_pending_gather(region, np.array([0, 1, 3]), np.zeros(3))
    # Repeated index 1: the scatter's own last write (7.0) wins.
    assert list(got) == [0.0, 7.0, 6.0]


def test_on_empty_fires_at_drain_and_immediately_when_empty():
    region = _Region()
    sb = StoreBuffer()
    fired = []
    sb.on_empty(lambda: fired.append("now"))
    assert fired == ["now"]  # already empty: immediate
    entry = sb.push_range(region, 0, np.array([1.0]), now=0)
    sb.on_empty(lambda: fired.append("drained"))
    assert fired == ["now"]
    sb.remove(entry)
    assert fired == ["now", "drained"]


def test_bad_ordering_and_delay_bands_rejected():
    with pytest.raises(ValueError, match="ordering"):
        StoreBuffer(ordering="weird")
    with pytest.raises(ValueError, match="delay band"):
        StoreBuffer(delay_bands=((5, 2),))
