"""Unit tests for the infinite write buffer."""

from repro.arch.write_buffer import WriteBuffer


def test_constant_drain_cost():
    buffer = WriteBuffer(drain_cycles=1)
    assert buffer.accept(32) == 1
    assert buffer.accept(32) == 1


def test_accounting():
    buffer = WriteBuffer()
    for _ in range(5):
        buffer.accept(32)
    assert buffer.entries_accepted == 5
    assert buffer.bytes_accepted == 160


def test_custom_drain_cost():
    buffer = WriteBuffer(drain_cycles=3)
    assert buffer.accept(64) == 3
