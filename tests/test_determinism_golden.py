"""Golden determinism tests: cycle counts pinned against the seed kernel.

The kernel's fast paths (due lane, inline stepping, flat cache mirror)
must be invisible to the simulation: per-experiment cycle counts AND
event counts must stay bit-identical to what the original heap-only
kernel produced. The numbers below were captured from the seed kernel on
the small configurations; any drift means an optimization changed
simulation semantics, not just speed.

The fastest pair (mse) and the validation microbenchmarks run in tier-1;
the heavier pairs are marked ``slow`` and run in CI's non-blocking job.
"""

import pytest

from repro.core.experiments import EXPERIMENTS

#: exp_id -> (config overrides, golden numbers from the seed kernel).
GOLDEN = {
    "gauss": (
        {"procs": 4, "app": {"n": 64}},
        {
            "mp_total": 1115149.5,
            "sm_total": 1312978.0,
            "mp_elapsed": 1115222,
            "sm_elapsed": 1312978,
            "mp_events": 7994,
            "sm_events": 45098,
        },
    ),
    "em3d": (
        {"procs": 4, "app": {"nodes_per_proc": 40, "degree": 4, "iterations": 3}},
        {
            "mp_total": 131618.0,
            "sm_total": 412938.0,
            "mp_elapsed": 131618,
            "sm_elapsed": 412938,
            "mp_events": 3454,
            "sm_events": 43806,
        },
    ),
    "mse": (
        {"procs": 4, "app": {"bodies": 16, "elements_per_body": 4, "iterations": 3}},
        {
            "mp_total": 116528.0,
            "sm_total": 146983.0,
            "mp_elapsed": 116528,
            "sm_elapsed": 146983,
            "mp_events": 1390,
            "sm_events": 1916,
        },
    ),
    "lcp": (
        {"procs": 4, "app": {"n": 96}},
        {
            "mp_total": 677666.0,
            "sm_total": 703421.0,
            "mp_elapsed": 677666,
            "sm_elapsed": 703421,
            "mp_events": 12579,
            "sm_events": 24068,
        },
    ),
}


def _run_and_check(exp_id):
    overrides, golden = GOLDEN[exp_id]
    spec = EXPERIMENTS[exp_id]
    pair = spec.runner(spec.config.with_overrides(overrides))
    observed = {
        "mp_total": pair.mp_result.board.mean_total(),
        "sm_total": pair.sm_result.board.mean_total(),
        "mp_elapsed": pair.mp_result.elapsed_cycles,
        "sm_elapsed": pair.sm_result.elapsed_cycles,
        "mp_events": pair.mp_result.machine.engine.events_executed,
        "sm_events": pair.sm_result.machine.engine.events_executed,
    }
    assert observed == golden


def test_mse_cycle_counts_bit_identical_to_seed():
    _run_and_check("mse")


def test_validation_latencies_bit_identical_to_seed():
    spec = EXPERIMENTS["validation"]
    checks = spec.runner(spec.config)
    measured = {name: values["measured"] for name, values in checks.items()}
    assert measured == {
        "am_one_way": 200,
        "barrier": 100,
        "sm_remote_miss_idle": 277,
    }


@pytest.mark.slow
@pytest.mark.parametrize("exp_id", ["gauss", "em3d", "lcp"])
def test_pair_cycle_counts_bit_identical_to_seed(exp_id):
    _run_and_check(exp_id)
