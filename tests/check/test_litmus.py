"""Litmus suite: every classic SC shape holds on the simulated machine."""

import pytest

from repro.check import CheckError
from repro.check.litmus import (
    DEFAULT_SEEDS,
    LITMUS_TESTS,
    Ld,
    LitmusTest,
    St,
    run_litmus,
    run_suite,
)


def test_suite_has_the_required_shapes():
    names = [t.name for t in LITMUS_TESTS]
    assert len(names) >= 8
    assert len(set(names)) == len(names)
    for required in (
        "mp_message_passing",
        "sb_store_buffering",
        "iriw_independent_reads",
        "corr_coherent_read_read",
    ):
        assert required in names


@pytest.mark.parametrize("test", LITMUS_TESTS, ids=lambda t: t.name)
def test_forbidden_outcome_never_appears(test):
    observed = run_litmus(test, seeds=DEFAULT_SEEDS)
    assert sum(observed.values()) == len(DEFAULT_SEEDS)


def test_outcomes_expose_registers_and_memory():
    test = LITMUS_TESTS[0]  # mp_message_passing
    observed = run_litmus(test, seeds=(0,))
    ((outcome, count),) = observed.items()
    keys = dict(outcome)
    assert count == 1
    assert {"1:r0", "1:r1", "mem:x", "mem:y"} <= set(keys)
    assert keys["mem:x"] == 1 and keys["mem:y"] == 1


def test_jitter_produces_distinct_outcomes():
    """The timing jitter must actually move operations around: across
    the default seeds at least one shape shows more than one outcome."""
    results = run_suite(seeds=DEFAULT_SEEDS)
    assert any(len(observed) > 1 for observed in results.values())


def test_forbidden_predicate_actually_fires():
    """A shape whose 'forbidden' outcome is SC-guaranteed must raise —
    proving failures are detected, not silently swallowed."""
    rigged = LitmusTest(
        name="rigged_always_fails",
        programs=((St("x", 1), Ld("x", "r0")),),
        forbidden=lambda o: o["0:r0"] == 1,  # guaranteed on any machine
    )
    with pytest.raises(CheckError) as exc:
        run_litmus(rigged, seeds=(0,))
    assert exc.value.invariant == "litmus"
    assert "rigged_always_fails" in exc.value.detail


def test_dsl_helpers():
    test = LITMUS_TESTS[0]
    assert test.nprocs == 2
    assert test.variables() == ("x", "y")
