"""Fixtures for the checking-subsystem tests."""

import pytest

from repro import check


@pytest.fixture(autouse=True)
def _no_leaked_checker():
    """A test that fails mid-`install` must not poison later tests."""
    yield
    check.uninstall()
