"""Tests for the typed failure vocabulary."""

import pytest

from repro.check import CheckError


def test_is_a_runtime_error():
    """Protocol guards that catch RuntimeError keep working."""
    assert issubclass(CheckError, RuntimeError)
    with pytest.raises(RuntimeError):
        raise CheckError("swmr", "boom")


def test_carries_structured_fields():
    err = CheckError(
        "dir-agreement",
        "caches disagree",
        node=3,
        block=0x1F40,
        state="EXCLUSIVE@2",
    )
    assert err.invariant == "dir-agreement"
    assert err.detail == "caches disagree"
    assert err.node == 3
    assert err.block == 0x1F40
    assert err.state == "EXCLUSIVE@2"


def test_message_format_includes_context():
    err = CheckError("swmr", "two writers", node=1, block=0x40, state="S")
    assert str(err) == "[swmr] node 1 block 0x40 state S two writers"


def test_optional_fields_are_omitted_from_message():
    err = CheckError("litmus", "forbidden outcome observed")
    assert str(err) == "[litmus] forbidden outcome observed"
    assert err.node is None and err.block is None and err.state is None
