"""Message-passing invariant monitors: FIFO, conservation, quiescence."""

import numpy as np
import pytest

from repro import check
from repro.arch.params import MachineParams
from repro.check import CheckError
from repro.mp.machine import MpMachine
from repro.mp.netiface import Packet

PARAMS = MachineParams.paper(num_processors=2)


def _make_machine(seed=11):
    return MpMachine(PARAMS, seed=seed)


def _ping_program(ctx, rounds):
    """Each node sends ``rounds`` sequenced messages to its neighbor."""
    received = [0]

    def on_ping(hctx, packet):
        received[0] += 1
        return
        yield  # pragma: no cover - makes this a generator

    ctx.am.register("ping", on_ping)
    peer = (ctx.pid + 1) % ctx.nprocs
    for i in range(rounds):
        yield from ctx.am.send(peer, "ping", i, data_bytes=8)
    yield from ctx.poll_wait(lambda: received[0] >= rounds)
    yield from ctx.barrier()
    return received[0]


def test_checked_run_counts_invariants():
    with check.checking() as checker:
        machine = _make_machine()
        result = machine.run(_ping_program, 3)
    assert result.outputs == [3, 3]
    report = checker.report()
    assert report["conservation"] >= 6
    assert report["fifo"] >= 6
    assert report["quiescence"] == 1


def test_checking_perturbs_nothing():
    machine = _make_machine()
    plain = machine.run(_ping_program, 3)
    with check.checking():
        machine = _make_machine()
        checked = machine.run(_ping_program, 3)
    assert checked.elapsed_cycles == plain.elapsed_cycles
    assert checked.outputs == plain.outputs


def test_forged_short_train_trips_conservation():
    """A train whose bytes do not account for its packets is rejected
    at injection time."""
    with check.checking():
        machine = _make_machine()
        with pytest.raises(CheckError) as exc:
            machine.deliver(Packet(0, 1, "x", None, data_bytes=4))
        assert exc.value.invariant == "conservation"


def _flush(machine, *packets):
    for packet in packets:
        machine.deliver(packet)
    machine.engine.run()  # let the delivery events land in the NI


def test_reordered_queue_trips_fifo():
    with check.checking():
        machine = _make_machine()
        a = Packet(0, 1, "t", ("a",), data_bytes=16, control_bytes=4)
        b = Packet(0, 1, "t", ("b",), data_bytes=16, control_bytes=4)
        _flush(machine, a, b)
        machine.nodes[1].ni._incoming.reverse()
        with pytest.raises(CheckError) as exc:
            machine.nodes[1].ni.dequeue()
        assert exc.value.invariant == "fifo"
        assert exc.value.node == 1


def test_duplicate_receipt_trips_conservation():
    with check.checking():
        machine = _make_machine()
        a = Packet(0, 1, "t", ("a",), data_bytes=16, control_bytes=4)
        _flush(machine, a)
        ni = machine.nodes[1].ni
        assert ni.dequeue() is a
        ni.enqueue(a)  # the same packet appears in the queue again
        with pytest.raises(CheckError) as exc:
            ni.dequeue()
        assert exc.value.invariant == "conservation"
        assert "twice" in exc.value.detail


def _leaky_program(ctx):
    """Node 0 sends one message nobody ever polls for."""
    if ctx.pid == 0:
        yield from ctx.am.send(1, "orphan", 1, data_bytes=8)
    yield from ctx.compute(1)


def test_unpolled_packet_is_residual_not_violation():
    """Real programs legitimately end with undrained packets (EM3D's
    last-round flow-control credits); the default checker counts them."""
    with check.checking() as checker:
        machine = _make_machine()
        machine.run(_leaky_program)
    assert checker.checks["residual-packets"] >= 1


def test_strict_quiescence_rejects_residual():
    with check.checking(check.Checker(strict_quiescence=True)):
        machine = _make_machine()
        with pytest.raises(CheckError) as exc:
            machine.run(_leaky_program)
        assert exc.value.invariant == "quiescence"


def _push_program(ctx):
    """One push-style channel round: data lands, nobody waits on it."""
    if ctx.pid == 0:
        window = ctx.alloc("window", 8, fill=0.0)
        yield from ctx.cmmd.offer_channel(1, window, key="push")
        yield from ctx.poll_wait(
            lambda: any(
                c.received_bytes
                for c in ctx.cmmd._recv_channels.values()
            )
        )
    else:
        channel = yield from ctx.cmmd.accept_channel(0, key="push")
        yield from ctx.cmmd.write_channel(
            channel, np.arange(8, dtype=np.float64)
        )
    yield from ctx.barrier()


def test_unconsumed_channel_bytes_are_residual_not_violation():
    """ALCP-MP's star updates are delivered but never waited on; the
    default checker accounts for the bytes instead of failing."""
    with check.checking() as checker:
        machine = _make_machine()
        machine.run(_push_program)
    assert checker.checks["residual-channel-bytes"] == 64


def test_strict_quiescence_rejects_unconsumed_channel_bytes():
    with check.checking(check.Checker(strict_quiescence=True)):
        machine = _make_machine()
        with pytest.raises(CheckError) as exc:
            machine.run(_push_program)
        assert exc.value.invariant == "quiescence"
        assert "unconsumed" in exc.value.detail
