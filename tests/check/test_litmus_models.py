"""The model x shape litmus verdict matrix, pinned in both directions.

The litmus suite stopped being SC regression armor and became the
memory-model oracle: every shape declares which models permit its
relaxed outcome, and :func:`repro.check.litmus.run_litmus` asserts both
that forbidden outcomes never appear *and* that permitted outcomes are
actually observable within a seed budget. These tests pin the full
expected-outcome table, exercise the distinguishing cells on the real
machine, and prove mislabeled matrix entries fail loudly.
"""

from dataclasses import replace

import pytest

from repro.check import CheckError
from repro.check.litmus import (
    DEFAULT_SEEDS,
    LITMUS_TESTS,
    run_litmus,
    run_matrix,
)

_BY_NAME = {t.name: t for t in LITMUS_TESTS}

#: The full model x shape expected-outcome table. A shape appears with
#: exactly the models that permit its relaxed outcome; absence means
#: forbidden under every model. Grounding, per shape:
#: loads block in program order on this machine, so LB never relaxes;
#: store-buffer commits are single serialized memory-write instants, so
#: IRIW/WRC (store atomicity) hold everywhere; the buffer is
#: per-location FIFO under both relaxed models, so CoRR/CoWW hold;
#: atomics fence, so RMW holds. TSO's FIFO drain preserves MP and 2+2W
#: but permits SB; PC's cross-location commit jitter additionally
#: permits MP and 2+2W.
EXPECTED_MATRIX = {
    "mp_message_passing": ("pc",),
    "sb_store_buffering": ("tso", "pc"),
    "lb_load_buffering": (),
    "iriw_independent_reads": (),
    "corr_coherent_read_read": (),
    "coww_coherent_write_write": (),
    "w2plus2_write_serialization": ("pc",),
    "wrc_write_read_causality": (),
    "rmw_atomicity": (),
}


def test_matrix_table_is_pinned():
    """The shipped permitted_under labels match the expected table
    exactly — any edit to either side must be deliberate and paired."""
    assert {t.name for t in LITMUS_TESTS} == set(EXPECTED_MATRIX)
    for test in LITMUS_TESTS:
        assert test.permitted_under == EXPECTED_MATRIX[test.name], test.name


# -- distinguishing cells, run live ---------------------------------------


def test_tso_observes_store_buffering():
    """SB is TSO's signature relaxation: run_litmus must see it (it
    raises if the permitted outcome never shows within the budget)."""
    observed = run_litmus(
        _BY_NAME["sb_store_buffering"], seeds=(0, 1, 2), consistency="tso"
    )
    relaxed = [
        o for o in observed if _BY_NAME["sb_store_buffering"].forbidden(dict(o))
    ]
    assert relaxed, "run_litmus returned without observing SB under tso"


def test_tso_still_forbids_message_passing():
    """TSO's FIFO drain keeps MP intact — data commits before flag."""
    observed = run_litmus(
        _BY_NAME["mp_message_passing"], seeds=DEFAULT_SEEDS, consistency="tso"
    )
    assert sum(observed.values()) == len(DEFAULT_SEEDS)


def test_pc_observes_message_passing():
    """PC's cross-location commit jitter lets the flag overtake the
    data — the partition-consistency signature."""
    run_litmus(_BY_NAME["mp_message_passing"], consistency="pc")


def test_pc_observes_2plus2w():
    run_litmus(_BY_NAME["w2plus2_write_serialization"], consistency="pc")


@pytest.mark.parametrize("model", ["tso", "pc"])
@pytest.mark.parametrize(
    "name",
    ["corr_coherent_read_read", "coww_coherent_write_write", "rmw_atomicity"],
)
def test_coherence_holds_under_relaxation(model, name):
    """Per-location order and atomic fencing survive both relaxed
    models — the store buffer is per-location FIFO and atomics drain."""
    observed = run_litmus(_BY_NAME[name], seeds=(0, 1), consistency=model)
    assert sum(observed.values()) == 2


@pytest.mark.parametrize("model", ["tso", "pc"])
def test_iriw_holds_under_relaxation(model):
    """Commits are single serialized memory-write instants, so both
    relaxed models keep store atomicity (IRIW never splits)."""
    observed = run_litmus(
        _BY_NAME["iriw_independent_reads"], seeds=(0, 1), consistency=model
    )
    assert sum(observed.values()) == 2


# -- mislabeled matrix entries fail loudly --------------------------------


def test_mislabeled_permitted_raises():
    """A cell labeled permitted whose model can never produce the
    relaxed outcome must raise once the seed budget is spent — a model
    that cannot exhibit its own relaxations is mislabeled or broken."""
    wrong = replace(_BY_NAME["mp_message_passing"], permitted_under=("tso",))
    with pytest.raises(CheckError) as exc:
        run_litmus(wrong, seeds=(0, 1), consistency="tso", observe_budget=6)
    assert "never observed" in exc.value.detail


def test_mislabeled_forbidden_raises():
    """A cell labeled forbidden whose model does produce the relaxed
    outcome must raise at the first observation — dropping a label
    cannot silently weaken the gate."""
    wrong = replace(_BY_NAME["sb_store_buffering"], permitted_under=())
    with pytest.raises(CheckError) as exc:
        run_litmus(wrong, seeds=tuple(range(12)), consistency="tso")
    assert "forbidden outcome" in exc.value.detail


def test_unknown_model_in_permitted_under_raises():
    wrong = replace(
        _BY_NAME["sb_store_buffering"], permitted_under=("tso", "weird")
    )
    with pytest.raises(CheckError) as exc:
        run_litmus(wrong, seeds=(0,))
    assert "unknown model" in exc.value.detail


def test_unknown_consistency_argument_raises():
    with pytest.raises(ValueError, match="unknown consistency"):
        run_litmus(_BY_NAME["sb_store_buffering"], consistency="tsso")


# -- the whole matrix -----------------------------------------------------


def test_matrix_records_have_verdicts():
    """A one-cell matrix run returns the verdict record shape the CI
    job and the docs table are built from."""
    rows = run_matrix(
        tests=[_BY_NAME["sb_store_buffering"]],
        models=("sc", "tso"),
        seeds=(0, 1, 2),
    )
    by_model = {r["model"]: r for r in rows}
    assert by_model["sc"]["expected"] == "forbidden"
    assert by_model["sc"]["relaxed_observed"] == 0
    assert by_model["tso"]["expected"] == "permitted"
    assert by_model["tso"]["relaxed_observed"] >= 1


@pytest.mark.parametrize("backend", ["batched", "reference"])
def test_full_matrix_holds(backend):
    """Every cell of the model x shape matrix, both backends: any
    verdict contradiction raises inside run_litmus."""
    rows = run_matrix(seeds=DEFAULT_SEEDS, backend=backend)
    assert len(rows) == 3 * len(LITMUS_TESTS)
    for row in rows:
        expected = EXPECTED_MATRIX[row["test"]]
        assert row["expected"] == (
            "permitted" if row["model"] in expected else "forbidden"
        )
        if row["expected"] == "forbidden":
            assert row["relaxed_observed"] == 0
        else:
            assert row["relaxed_observed"] >= 1
