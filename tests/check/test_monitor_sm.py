"""Shared-memory invariant monitors: installation, counting, detection.

Positive tests run real programs and assert the monitors counted work
without complaining; negative tests corrupt machine state behind the
protocol's back and assert the corresponding invariant trips.
"""

import numpy as np
import pytest

from repro import check
from repro.arch.cache import LineState
from repro.arch.params import MachineParams
from repro.check import CheckError
from repro.sm.machine import SmMachine

PARAMS = MachineParams.paper(num_processors=2)


def _make_machine(seed=11):
    machine = SmMachine(PARAMS, seed=seed)
    region = machine.space.alloc_shared(
        "t.data", owner=0, shape=8, dtype=np.float64, fill=0.0
    )
    machine.index_region(region)
    return machine, region


def _program(ctx, region, out):
    lo = ctx.pid * 4
    yield from ctx.write(
        region, lo, values=np.arange(4, dtype=np.float64) + 10.0 * ctx.pid
    )
    yield from ctx.barrier()
    values = yield from ctx.read(region, 0, 8)
    out[ctx.pid] = np.array(values)


def test_null_checker_is_default():
    assert check.active() is check.NULL
    assert not check.active().enabled


def test_install_uninstall_roundtrip():
    checker = check.Checker()
    assert check.install(checker) is checker
    assert check.active() is checker
    check.uninstall()
    assert check.active() is check.NULL


def test_double_install_raises():
    check.install(check.Checker())
    with pytest.raises(RuntimeError, match="already installed"):
        check.install(check.Checker())


def test_checking_context_uninstalls_on_error():
    with pytest.raises(ValueError):
        with check.checking():
            assert check.active().enabled
            raise ValueError("boom")
    assert check.active() is check.NULL


def test_checked_run_counts_invariants():
    with check.checking() as checker:
        machine, region = _make_machine()
        out = {}
        machine.run(_program, region, out)
    report = checker.report()
    assert report["swmr"] > 0
    assert report["data-value"] > 0
    assert report["dir-agreement"] > 0
    assert report["oracle-final"] == 1
    assert list(report) == sorted(report)


def test_checking_perturbs_nothing():
    """Same seed, same program: results and cycle counts are identical
    with the checker on and off (the zero-overhead-when-off contract's
    stronger sibling: zero *perturbation* when on)."""
    out_plain = {}
    machine, region = _make_machine()
    plain = machine.run(_program, region, out_plain)
    out_checked = {}
    with check.checking():
        machine, region = _make_machine()
        checked = machine.run(_program, region, out_checked)
    assert checked.elapsed_cycles == plain.elapsed_cycles
    for pid in out_plain:
        assert np.array_equal(out_plain[pid], out_checked[pid])


def test_forced_second_writer_trips_swmr():
    with check.checking():
        machine, region = _make_machine()
        out = {}
        machine.run(_program, region, out)
        # Both caches hold the first block SHARED after the final reads;
        # promoting one to EXCLUSIVE behind the protocol's back is the
        # classic SWMR violation.
        block_bytes = machine.params.common.block_bytes
        block = region.addr_of(0) - region.addr_of(0) % block_bytes
        with pytest.raises(CheckError) as exc:
            machine.nodes[1].cache.set_state(block, LineState.EXCLUSIVE)
        assert exc.value.invariant == "swmr"
        assert exc.value.node == 1
        assert exc.value.block == block


def test_untracked_cache_line_trips_dir_agreement():
    with check.checking() as checker:
        machine, region = _make_machine()
        # A shared block the directory has never heard of appears in a
        # cache: the quiescent sweep must notice the disagreement.
        block_bytes = machine.params.common.block_bytes
        block = region.addr_of(4) - region.addr_of(4) % block_bytes
        machine.nodes[0].cache.insert(block, LineState.SHARED)
        with pytest.raises(CheckError) as exc:
            checker.verify_quiescent()
        assert exc.value.invariant == "dir-agreement"
        assert exc.value.block == block


def test_memory_corruption_trips_oracle():
    with check.checking() as checker:
        machine, region = _make_machine()
        out = {}
        machine.run(_program, region, out)
        region.np.reshape(-1)[3] += 1.0  # a store that bypassed the protocol
        with pytest.raises(CheckError) as exc:
            checker.verify_quiescent()
        assert exc.value.invariant == "data-value"
        assert "oracle" in exc.value.detail


def test_oracle_can_be_disabled():
    with check.checking(check.Checker(oracle=False)) as checker:
        machine, region = _make_machine()
        out = {}
        machine.run(_program, region, out)
    report = checker.report()
    assert "data-value" not in report
    assert "oracle-final" not in report
    assert report["swmr"] > 0


def test_machines_built_after_uninstall_are_not_monitored():
    with check.checking() as checker:
        pass
    machine, region = _make_machine()
    out = {}
    machine.run(_program, region, out)
    assert not checker.checks
