"""Randomized stress programs, including Hypothesis-driven schedules."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.check.stress import (
    _mp_schedule,
    _sm_schedule,
    run_mp_stress,
    run_sm_stress,
)

_SETTINGS = dict(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def test_sm_stress_fixed_seed():
    report = run_sm_stress(ops=160, seed=0)
    assert report["sm_ops"] == 160
    assert report["increments"] > 0
    assert report["swmr"] > 0
    assert report["data-value"] > 0
    assert report["oracle-final"] >= 1


@pytest.mark.parametrize("consistency", ["tso", "pc"])
def test_sm_stress_relaxed_models(consistency):
    """The same schedules run clean through the store-buffered machine.

    The monitor's oracle is relaxed to per-location coherence: loads
    are judged against the committed shadow plus the loader's own
    pending stores, every drain commit is checked for per-location
    program order (CoRR/CoWW still enforced), and quiescence demands
    dry store buffers. Mutual exclusion must stay exact — lock release
    fences.
    """
    report = run_sm_stress(ops=160, seed=0, consistency=consistency)
    assert report["sm_ops"] == 160
    assert report["increments"] > 0
    assert report["data-value"] > 0
    # Relaxed-only invariants actually engaged.
    assert report["coherence-order"] > 0
    assert report["sb-quiescent"] == 4  # one per processor at quiescence
    assert report["oracle-final"] >= 1


@pytest.mark.parametrize("consistency", ["tso", "pc"])
def test_sm_stress_relaxed_deterministic(consistency):
    """Relaxed stress is reproducible: same seed, same report."""
    a = run_sm_stress(ops=120, seed=3, consistency=consistency)
    b = run_sm_stress(ops=120, seed=3, consistency=consistency)
    assert a == b


@given(seed=st.integers(0, 2**16))
@settings(**_SETTINGS)
def test_sm_stress_random_schedules_relaxed_pc(seed):
    report = run_sm_stress(ops=80, seed=seed, consistency="pc")
    assert report["sm_ops"] == 80
    assert report["coherence-order"] > 0


def test_mp_stress_fixed_seed():
    report = run_mp_stress(ops=80, seed=0)
    assert report["mp_messages"] == 80
    assert report["fifo"] > 0
    assert report["conservation"] > 0
    # Strict quiescence: the stress program drains everything.
    assert "residual-packets" not in report
    assert "residual-channel-bytes" not in report


def test_mp_stress_needs_even_nprocs():
    with pytest.raises(ValueError, match="even"):
        run_mp_stress(ops=10, nprocs=3)


def test_schedules_are_deterministic():
    assert _sm_schedule(100, 7, 4) == _sm_schedule(100, 7, 4)
    assert _mp_schedule(100, 7, 4) == _mp_schedule(100, 7, 4)
    assert _sm_schedule(100, 7, 4) != _sm_schedule(100, 8, 4)


@given(ops=st.integers(40, 160), seed=st.integers(0, 2**16))
@settings(**_SETTINGS)
def test_sm_stress_random_schedules(ops, seed):
    report = run_sm_stress(ops=ops, seed=seed)
    assert report["sm_ops"] == ops


@given(ops=st.integers(20, 80), seed=st.integers(0, 2**16))
@settings(**_SETTINGS)
def test_mp_stress_random_schedules(ops, seed):
    report = run_mp_stress(ops=ops, seed=seed)
    assert report["mp_messages"] == ops
