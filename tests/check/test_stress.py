"""Randomized stress programs, including Hypothesis-driven schedules."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.check.stress import (
    _mp_schedule,
    _sm_schedule,
    run_mp_stress,
    run_sm_stress,
)

_SETTINGS = dict(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def test_sm_stress_fixed_seed():
    report = run_sm_stress(ops=160, seed=0)
    assert report["sm_ops"] == 160
    assert report["increments"] > 0
    assert report["swmr"] > 0
    assert report["data-value"] > 0
    assert report["oracle-final"] >= 1


def test_mp_stress_fixed_seed():
    report = run_mp_stress(ops=80, seed=0)
    assert report["mp_messages"] == 80
    assert report["fifo"] > 0
    assert report["conservation"] > 0
    # Strict quiescence: the stress program drains everything.
    assert "residual-packets" not in report
    assert "residual-channel-bytes" not in report


def test_mp_stress_needs_even_nprocs():
    with pytest.raises(ValueError, match="even"):
        run_mp_stress(ops=10, nprocs=3)


def test_schedules_are_deterministic():
    assert _sm_schedule(100, 7, 4) == _sm_schedule(100, 7, 4)
    assert _mp_schedule(100, 7, 4) == _mp_schedule(100, 7, 4)
    assert _sm_schedule(100, 7, 4) != _sm_schedule(100, 8, 4)


@given(ops=st.integers(40, 160), seed=st.integers(0, 2**16))
@settings(**_SETTINGS)
def test_sm_stress_random_schedules(ops, seed):
    report = run_sm_stress(ops=ops, seed=seed)
    assert report["sm_ops"] == ops


@given(ops=st.integers(20, 80), seed=st.integers(0, 2**16))
@settings(**_SETTINGS)
def test_mp_stress_random_schedules(ops, seed):
    report = run_mp_stress(ops=ops, seed=seed)
    assert report["mp_messages"] == ops
