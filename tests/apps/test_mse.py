"""Tests for the MSE application pair."""

import numpy as np
import pytest

from repro.apps.mse.common import (
    MseConfig,
    body_block,
    generate_problem,
    owner_of_body,
    refresh_period,
)
from repro.apps.mse.mp import run_mse_mp
from repro.apps.mse.sm import run_mse_sm
from repro.arch.params import MachineParams
from repro.mp.machine import MpMachine
from repro.sm.machine import SmMachine
from repro.stats.categories import MpCat, SmCat

CONFIG = MseConfig.small(bodies=8, elements_per_body=4, iterations=5)


def test_problem_generation_deterministic():
    p1 = generate_problem(CONFIG)
    p2 = generate_problem(CONFIG)
    assert (p1.positions == p2.positions).all()
    assert (p1.periods == p2.periods).all()


def test_schedule_periods_structure():
    problem = generate_problem(MseConfig.small(bodies=16))
    assert (np.diag(problem.periods) == 1).all()
    assert (problem.periods == problem.periods.T).all()
    assert problem.periods.min() >= 1
    assert problem.periods.max() <= problem.config.max_period
    # Distant pairs exchange less often than the nearest pairs.
    assert problem.periods.max() > 1


def test_refresh_period_is_min_over_owned_bodies():
    problem = generate_problem(MseConfig.small(bodies=8))
    lo, hi = body_block(0, 8, 4)
    for body in range(8):
        expected = int(problem.periods[lo:hi, body].min())
        assert refresh_period(problem, 0, body, 4) == expected


def test_serial_jacobi_converges():
    problem = generate_problem(CONFIG)
    n = CONFIG.total_elements
    solution = np.zeros(n)
    initial = problem.residual(solution)
    for _ in range(30):
        new = np.array(
            [problem.jacobi_row_update(solution, i, 0.9) for i in range(n)]
        )
        solution = new
    assert problem.residual(solution) < 0.01 * initial


def test_mse_mp_converges():
    machine = MpMachine(MachineParams.paper(num_processors=4), seed=4)
    result, solution = run_mse_mp(machine, CONFIG)
    problem = generate_problem(CONFIG)
    zero = problem.residual(np.zeros(CONFIG.total_elements))
    assert problem.residual(solution) < 0.2 * zero


def test_mse_sm_converges():
    machine = SmMachine(MachineParams.paper(num_processors=4), seed=4)
    result, solution = run_mse_sm(machine, CONFIG)
    problem = generate_problem(CONFIG)
    zero = problem.residual(np.zeros(CONFIG.total_elements))
    assert problem.residual(solution) < 0.2 * zero


def test_pair_reaches_similar_solutions():
    """Asynchronous Jacobi: versions agree approximately, not exactly."""
    _r1, s_mp = run_mse_mp(
        MpMachine(MachineParams.paper(num_processors=4), seed=4), CONFIG
    )
    _r2, s_sm = run_mse_sm(
        SmMachine(MachineParams.paper(num_processors=4), seed=4), CONFIG
    )
    assert np.allclose(s_mp, s_sm, rtol=0.1, atol=0.05)


def test_computation_dominates_both_versions():
    """The paper: MSE is computation-bound (90% MP, 82% SM)."""
    r_mp, _s = run_mse_mp(
        MpMachine(MachineParams.paper(num_processors=4), seed=4), CONFIG
    )
    comp = r_mp.board.mean_cycles(MpCat.COMPUTE)
    assert comp / r_mp.board.mean_total() > 0.6
    r_sm, _s2 = run_mse_sm(
        SmMachine(MachineParams.paper(num_processors=4), seed=4), CONFIG
    )
    comp = r_sm.board.mean_cycles(SmCat.COMPUTE)
    assert comp / r_sm.board.mean_total() > 0.6


def test_sm_shared_misses_follow_schedule():
    """Shared misses stay a small fraction of the computation."""
    r_sm, _s = run_mse_sm(
        SmMachine(MachineParams.paper(num_processors=4), seed=4), CONFIG
    )
    shared = r_sm.board.mean_cycles(SmCat.SHARED_MISS)
    assert 0 < shared < 0.3 * r_sm.board.mean_total()


def test_sm_startup_imbalance_shows_up():
    """Processor 0's sequential setup surfaces as start-up/barrier time."""
    r_sm, _s = run_mse_sm(
        SmMachine(MachineParams.paper(num_processors=4), seed=4), CONFIG
    )
    for proc in r_sm.board.procs[1:]:
        assert proc.cycles.get(SmCat.STARTUP_WAIT, 0) > 0
    assert r_sm.board.procs[0].cycles.get(SmCat.STARTUP_WAIT, 0) == 0


def test_mp_requests_are_serviced_asynchronously():
    r_mp, _s = run_mse_mp(
        MpMachine(MachineParams.paper(num_processors=4), seed=4), CONFIG
    )
    board = r_mp.board
    assert board.total_count("active_messages") > 0
    assert board.mean_count("messages_sent") > 0
    # Communication shows up as library time, not barriers.
    assert board.mean_cycles(MpCat.LIB_COMPUTE) > 0


def test_owner_of_body():
    for body in range(8):
        pid = owner_of_body(body, 8, 4)
        lo, hi = body_block(pid, 8, 4)
        assert lo <= body < hi


def test_too_few_bodies_rejected():
    with pytest.raises(ValueError):
        run_mse_mp(
            MpMachine(MachineParams.paper(num_processors=4), seed=4),
            MseConfig.small(bodies=2),
        )
