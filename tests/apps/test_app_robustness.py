"""Robustness of the applications across workload corners."""

import numpy as np
import pytest

from repro.apps.em3d.common import Em3dConfig, build_graph, reference_values
from repro.apps.em3d.mp import run_em3d_mp
from repro.apps.em3d.sm import run_em3d_sm
from repro.apps.gauss.common import GaussConfig, generate_system, residual
from repro.apps.gauss.mp import run_gauss_mp
from repro.apps.gauss.sm import run_gauss_sm
from repro.apps.lcp.common import LcpConfig, generate_problem
from repro.apps.lcp.sm import run_lcp_sm
from repro.apps.mse.common import MseConfig
from repro.apps.mse.mp import run_mse_mp
from repro.arch.params import MachineParams
from repro.mp.machine import MpMachine
from repro.sm.machine import SmMachine


def test_gauss_uneven_row_distribution():
    """n not divisible by P: block sizes differ, result still exact."""
    config = GaussConfig.small(n=23)  # 23 rows over 4 procs: 5/6/6/6
    machine = MpMachine(MachineParams.paper(num_processors=4), seed=8)
    _result, x = run_gauss_mp(machine, config)
    a, b, _x_true = generate_system(config)
    assert residual(a, b, x) < 1e-8


def test_gauss_single_processor():
    config = GaussConfig.small(n=12)
    machine = SmMachine(MachineParams.paper(num_processors=1), seed=8)
    _result, x = run_gauss_sm(machine, config)
    a, b, _x_true = generate_system(config)
    assert residual(a, b, x) < 1e-8


def test_em3d_zero_remote_edges():
    """remote_frac=0: no communication in the MP main loop at all."""
    config = Em3dConfig.small(nodes_per_proc=12, degree=3, remote_frac=0.0,
                              iterations=3)
    machine = MpMachine(MachineParams.paper(num_processors=3), seed=8)
    result, e_vals, h_vals = run_em3d_mp(machine, config)
    graph = build_graph(config, 3)
    e_ref, h_ref = reference_values(graph, config.iterations)
    assert np.allclose(e_vals, e_ref)
    assert result.board.mean_count("channel_writes", phase="main") == 0


def test_em3d_fully_remote_edges():
    config = Em3dConfig.small(nodes_per_proc=10, degree=2, remote_frac=1.0,
                              iterations=2)
    for machine, runner in (
        (MpMachine(MachineParams.paper(num_processors=3), seed=8), run_em3d_mp),
        (SmMachine(MachineParams.paper(num_processors=3), seed=8), run_em3d_sm),
    ):
        _result, e_vals, _h = runner(machine, config)
        graph = build_graph(config, 3)
        e_ref, _h_ref = reference_values(graph, config.iterations)
        assert np.allclose(e_vals, e_ref)


def test_lcp_under_relaxation_still_converges():
    config = LcpConfig.small(n=32, omega=0.7, tolerance=1e-4)
    machine = SmMachine(MachineParams.paper(num_processors=4), seed=8)
    _result, z, steps = run_lcp_sm(machine, config)
    problem = generate_problem(config)
    assert problem.complementarity_residual(z) < 1e-3
    assert steps < config.max_steps


def test_lcp_max_steps_bound_respected():
    config = LcpConfig.small(n=32, tolerance=1e-300, max_steps=3)
    machine = SmMachine(MachineParams.paper(num_processors=4), seed=8)
    _result, _z, steps = run_lcp_sm(machine, config)
    assert steps == 3


def test_mse_all_near_schedule_maximizes_communication():
    """near_distance large: every pair exchanges every iteration."""
    base = MseConfig.small(bodies=8, elements_per_body=3, iterations=4)
    eager = MseConfig(bodies=8, elements_per_body=3, iterations=4,
                      near_distance=10.0, seed=base.seed)
    machine_base = MpMachine(MachineParams.paper(num_processors=4), seed=8)
    r_base, _s = run_mse_mp(machine_base, base)
    machine_eager = MpMachine(MachineParams.paper(num_processors=4), seed=8)
    r_eager, _s2 = run_mse_mp(machine_eager, eager)
    assert (
        r_eager.board.mean_count("active_messages")
        >= r_base.board.mean_count("active_messages")
    )


def test_mse_deterministic_across_runs():
    config = MseConfig.small(bodies=8, elements_per_body=3, iterations=3)
    r1, s1 = run_mse_mp(MpMachine(MachineParams.paper(num_processors=4), seed=8), config)
    r2, s2 = run_mse_mp(MpMachine(MachineParams.paper(num_processors=4), seed=8), config)
    assert (s1 == s2).all()
    assert r1.elapsed_cycles == r2.elapsed_cycles
