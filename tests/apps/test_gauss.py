"""Tests for the Gauss application pair."""

import numpy as np
import pytest

from repro.apps.gauss.common import (
    GaussConfig,
    generate_system,
    owner_of_row,
    residual,
    row_block,
)
from repro.apps.gauss.mp import run_gauss_mp
from repro.apps.gauss.sm import run_gauss_sm
from repro.arch.params import MachineParams
from repro.mp.machine import MpMachine
from repro.sm.machine import SmMachine
from repro.stats.categories import MpCat, SmCat


def test_row_block_partition_covers_all_rows():
    n, nprocs = 37, 8
    rows = []
    for pid in range(nprocs):
        lo, hi = row_block(pid, n, nprocs)
        rows.extend(range(lo, hi))
    assert rows == list(range(n))


def test_owner_of_row_consistent_with_blocks():
    n, nprocs = 37, 8
    for pid in range(nprocs):
        lo, hi = row_block(pid, n, nprocs)
        for row in range(lo, hi):
            assert owner_of_row(row, n, nprocs) == pid


def test_generated_system_is_solvable():
    config = GaussConfig.small(n=24)
    a, b, x_true = generate_system(config)
    x = np.linalg.solve(a, b)
    assert np.allclose(x, x_true, atol=1e-8)


def test_system_generation_deterministic():
    a1, b1, _ = generate_system(GaussConfig.small(n=16))
    a2, b2, _ = generate_system(GaussConfig.small(n=16))
    assert (a1 == a2).all() and (b1 == b2).all()


def test_gauss_mp_solves_system():
    config = GaussConfig.small(n=24)
    machine = MpMachine(MachineParams.paper(num_processors=4), seed=1)
    result, x = run_gauss_mp(machine, config)
    a, b, x_true = generate_system(config)
    assert residual(a, b, x) < 1e-8
    assert np.allclose(x, x_true, atol=1e-6)
    # All processors agree on the solution.
    for output in result.outputs:
        assert np.allclose(output, x)


def test_gauss_sm_solves_system():
    config = GaussConfig.small(n=24)
    machine = SmMachine(MachineParams.paper(num_processors=4), seed=1)
    result, x = run_gauss_sm(machine, config)
    a, b, x_true = generate_system(config)
    assert residual(a, b, x) < 1e-8
    for output in result.outputs:
        assert np.allclose(output, x)


def test_pair_produces_identical_solutions():
    """Same algorithm, same pivots: bit-identical answers across machines."""
    config = GaussConfig.small(n=20)
    _mp_res, x_mp = run_gauss_mp(
        MpMachine(MachineParams.paper(num_processors=4), seed=1), config
    )
    _sm_res, x_sm = run_gauss_sm(
        SmMachine(MachineParams.paper(num_processors=4), seed=1), config
    )
    assert (x_mp == x_sm).all()


def test_gauss_mp_breakdown_shape():
    """Collectives dominate communication; computation is substantial."""
    config = GaussConfig.small(n=32)
    machine = MpMachine(MachineParams.paper(num_processors=8), seed=1)
    result, _x = run_gauss_mp(machine, config)
    board = result.board
    lib = board.mean_cycles(MpCat.LIB_COMPUTE) + board.mean_cycles(
        MpCat.NETWORK_ACCESS
    )
    assert lib > 0
    assert board.mean_cycles(MpCat.COMPUTE) > 0
    # Channel-based pivot broadcast happened.
    assert board.total_count("channel_writes") > 0
    assert board.total_count("active_messages") > 0


def test_gauss_sm_breakdown_shape():
    """Reductions, barriers, and shared misses all present (paper T9)."""
    config = GaussConfig.small(n=32)
    machine = SmMachine(MachineParams.paper(num_processors=8), seed=1)
    result, _x = run_gauss_sm(machine, config)
    board = result.board
    assert board.mean_cycles(SmCat.REDUCTION) > 0
    assert board.mean_cycles(SmCat.BARRIER) > 0
    assert board.mean_cycles(SmCat.SHARED_MISS) > 0
    # Directory contention from the shared-memory broadcast reads.
    assert machine.directory_contention() > 0
    # Private misses are negligible: rows live in shared memory.
    assert board.mean_count("private_misses") < board.mean_count(
        "shared_misses_remote"
    ) + board.mean_count("shared_misses_local")


def test_too_few_rows_rejected():
    config = GaussConfig.small(n=2)
    machine = MpMachine(MachineParams.paper(num_processors=4), seed=1)
    with pytest.raises(ValueError):
        run_gauss_mp(machine, config)
