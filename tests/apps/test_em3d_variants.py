"""Tests for the EM3D-SM protocol-extension variants (Section 5.3.4)."""

import numpy as np
import pytest

from repro.apps.em3d.common import Em3dConfig, build_graph, reference_values
from repro.apps.em3d.mp import run_em3d_mp
from repro.apps.em3d.sm import run_em3d_sm
from repro.arch.params import MachineParams
from repro.mp.machine import MpMachine
from repro.sm.machine import SmMachine

CONFIG = Em3dConfig.small(nodes_per_proc=24, degree=4, iterations=4)
PARAMS = MachineParams.paper(num_processors=4)


def run_variant(variant, seed=2):
    machine = SmMachine(PARAMS, seed=seed)
    return run_em3d_sm(machine, CONFIG, variant=variant)


@pytest.mark.parametrize("variant", ["base", "flush", "prefetch", "update"])
def test_variant_matches_reference(variant):
    _result, e_vals, h_vals = run_variant(variant)
    graph = build_graph(CONFIG, 4)
    e_ref, h_ref = reference_values(graph, CONFIG.iterations)
    assert np.allclose(e_vals, e_ref)
    assert np.allclose(h_vals, h_ref)


def test_unknown_variant_rejected():
    with pytest.raises(Exception):
        run_variant("bogus")


def test_flush_reduces_invalidations():
    """Flushed consumers need no invalidation on the producer's write."""
    r_base, _e, _h = run_variant("base")
    r_flush, _e2, _h2 = run_variant("flush")
    base_invals = r_base.board.mean_count("invalidations_received", phase="main")
    flush_invals = r_flush.board.mean_count("invalidations_received", phase="main")
    assert flush_invals < 0.5 * base_invals
    assert r_flush.board.mean_count("flushes") > 0
    # Producers also write-fault less: their lines stay exclusive.
    base_wf = r_base.board.mean_count("write_faults", phase="main")
    flush_wf = r_flush.board.mean_count("write_faults", phase="main")
    assert flush_wf <= base_wf


def test_update_protocol_removes_main_loop_misses():
    """Pushed values land in consumer caches: reads hit."""
    r_base, _e, _h = run_variant("base")
    r_update, _e2, _h2 = run_variant("update")
    base_misses = (
        r_base.board.mean_count("shared_misses_remote", phase="main")
        + r_base.board.mean_count("shared_misses_local", phase="main")
    )
    update_misses = (
        r_update.board.mean_count("shared_misses_remote", phase="main")
        + r_update.board.mean_count("shared_misses_local", phase="main")
    )
    # Roughly half the misses disappear at this small scale: the rest
    # are first-iteration cold misses and pushes still in flight when
    # the consumer passes the barrier.
    assert update_misses < 0.6 * base_misses
    assert r_update.board.mean_count("update_pushes", phase="main") > 0
    assert r_update.board.total_count("updates_received") > 0


def test_update_protocol_closes_gap_with_mp():
    """The Falsafi result: bulk update makes EM3D-SM comparable to MP."""
    mp_result, _e, _h = run_em3d_mp(MpMachine(PARAMS, seed=2), CONFIG)
    r_base, _e1, _h1 = run_variant("base")
    r_update, _e2, _h2 = run_variant("update")
    base_ratio = (
        r_base.board.mean_total(phase="main")
        / mp_result.board.mean_total(phase="main")
    )
    update_ratio = (
        r_update.board.mean_total(phase="main")
        / mp_result.board.mean_total(phase="main")
    )
    assert update_ratio < base_ratio
    assert update_ratio < 2.0  # paper: "performed equivalently"


def test_prefetch_hides_miss_stalls():
    """Prefetched sources arrive during compute: stall cycles drop."""
    from repro.stats.categories import SmCat

    r_base, _e, _h = run_variant("base")
    r_pref, _e2, _h2 = run_variant("prefetch")
    base_stall = r_base.board.mean_cycles(SmCat.SHARED_MISS, phase="main")
    pref_stall = r_pref.board.mean_cycles(SmCat.SHARED_MISS, phase="main")
    assert pref_stall < base_stall
    assert r_pref.board.mean_count("prefetches", phase="main") > 0
    # And the main loop gets faster overall.
    assert (
        r_pref.board.mean_total(phase="main")
        < r_base.board.mean_total(phase="main")
    )


def test_prefetch_does_not_break_sharing_semantics():
    """Prefetched copies are plain SHARED lines: the producer's next
    write still invalidates them, so values stay correct (checked by
    test_variant_matches_reference) and invalidations still occur."""
    r_pref, _e, _h = run_variant("prefetch")
    assert r_pref.board.mean_count("invalidations_received", phase="main") > 0


def test_update_region_writes_are_local():
    """Producer writes to an update region cause no write faults."""
    r_update, _e, _h = run_variant("update")
    # Write faults can only come from non-value (dir-protocol) regions;
    # value updates are producer-local under the update protocol.
    base, _e2, _h2 = run_variant("base")
    assert (
        r_update.board.mean_count("write_faults", phase="main")
        < base.board.mean_count("write_faults", phase="main")
    )
