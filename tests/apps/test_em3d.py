"""Tests for the EM3D application pair."""

import numpy as np
import pytest

from repro.apps.em3d.common import (
    E,
    H,
    Em3dConfig,
    build_graph,
    reference_values,
)
from repro.apps.em3d.mp import run_em3d_mp
from repro.apps.em3d.sm import run_em3d_sm
from repro.arch.params import MachineParams
from repro.memory.dataspace import HomePolicy
from repro.mp.machine import MpMachine
from repro.sm.machine import SmMachine
from repro.stats.categories import MpCat, SmCat

CONFIG = Em3dConfig.small(nodes_per_proc=20, degree=3, iterations=3)


def test_graph_is_deterministic():
    g1 = build_graph(CONFIG, 4)
    g2 = build_graph(CONFIG, 4)
    assert g1.out_edges == g2.out_edges


def test_graph_degree_and_remote_fraction():
    config = Em3dConfig.small(nodes_per_proc=100, degree=5, remote_frac=0.3)
    graph = build_graph(config, 4)
    for kind in (E, H):
        for pid in range(4):
            edges = graph.out_edges[kind][pid]
            assert len(edges) == 100 * 5
            remote = sum(1 for (_s, dp, _d, _w) in edges if dp != pid)
            assert 0.2 < remote / len(edges) < 0.4


def test_remote_edges_never_self():
    graph = build_graph(Em3dConfig.small(remote_frac=1.0), 3)
    for kind in (E, H):
        for pid in range(3):
            for _s, dest_pid, _d, _w in graph.out_edges[kind][pid]:
                assert dest_pid != pid


def test_single_proc_requires_zero_remote():
    with pytest.raises(ValueError):
        build_graph(Em3dConfig.small(remote_frac=0.5), 1)


def test_in_edges_mirror_out_edges():
    graph = build_graph(CONFIG, 4)
    total_out = sum(len(graph.out_edges[E][p]) for p in range(4))
    total_in = sum(
        len(deps) for p in range(4) for deps in graph.in_edges(H, p)
    )
    assert total_in == total_out  # E out-edges land on H nodes


def test_em3d_mp_matches_reference():
    machine = MpMachine(MachineParams.paper(num_processors=4), seed=2)
    result, e_vals, h_vals = run_em3d_mp(machine, CONFIG)
    graph = build_graph(CONFIG, 4)
    e_ref, h_ref = reference_values(graph, CONFIG.iterations)
    assert np.allclose(e_vals, e_ref)
    assert np.allclose(h_vals, h_ref)


def test_em3d_sm_matches_reference():
    machine = SmMachine(MachineParams.paper(num_processors=4), seed=2)
    result, e_vals, h_vals = run_em3d_sm(machine, CONFIG)
    graph = build_graph(CONFIG, 4)
    e_ref, h_ref = reference_values(graph, CONFIG.iterations)
    assert np.allclose(e_vals, e_ref)
    assert np.allclose(h_vals, h_ref)


def test_pair_produces_identical_values():
    mp_machine = MpMachine(MachineParams.paper(num_processors=4), seed=2)
    _r1, e_mp, h_mp = run_em3d_mp(mp_machine, CONFIG)
    sm_machine = SmMachine(MachineParams.paper(num_processors=4), seed=2)
    _r2, e_sm, h_sm = run_em3d_sm(sm_machine, CONFIG)
    assert np.allclose(e_mp, e_sm)
    assert np.allclose(h_mp, h_sm)


def test_em3d_mp_bulk_channel_communication():
    """Main-loop communication is a few bulk channel writes, not misses."""
    machine = MpMachine(MachineParams.paper(num_processors=4), seed=2)
    result, _e, _h = run_em3d_mp(machine, CONFIG)
    board = result.board
    # One channel write per neighbor per half-step in the main loop.
    assert board.mean_count("channel_writes", phase="main") > 0
    assert board.mean_count("data_bytes") > 0
    # Lib time present but no shared-memory-style synchronization.
    assert board.mean_cycles(MpCat.LIB_COMPUTE, phase="main") > 0


def test_em3d_sm_uses_locks_in_init_only():
    machine = SmMachine(MachineParams.paper(num_processors=4), seed=2)
    result, _e, _h = run_em3d_sm(machine, CONFIG)
    board = result.board
    assert board.mean_cycles(SmCat.LOCK, phase="init") > 0
    assert board.mean_cycles(SmCat.LOCK, phase="main") == 0
    assert board.mean_cycles(SmCat.BARRIER, phase="main") > 0


def test_em3d_sm_producer_consumer_misses():
    """Every half-step re-misses on remote source values (the 4-message
    pattern): main-loop shared misses scale with iterations."""
    short = Em3dConfig.small(nodes_per_proc=20, degree=3, iterations=2)
    long = Em3dConfig.small(nodes_per_proc=20, degree=3, iterations=6)
    m1 = SmMachine(MachineParams.paper(num_processors=4), seed=2)
    m2 = SmMachine(MachineParams.paper(num_processors=4), seed=2)
    r1, _e, _h = run_em3d_sm(m1, short)
    r2, _e2, _h2 = run_em3d_sm(m2, long)
    misses1 = r1.board.mean_count("shared_misses_remote", phase="main")
    misses2 = r2.board.mean_count("shared_misses_remote", phase="main")
    assert misses2 > 2 * misses1


def test_em3d_mp_faster_than_sm():
    """The paper's headline: EM3D-MP is substantially faster."""
    mp_machine = MpMachine(MachineParams.paper(num_processors=4), seed=2)
    rmp, _e, _h = run_em3d_mp(mp_machine, CONFIG)
    sm_machine = SmMachine(MachineParams.paper(num_processors=4), seed=2)
    rsm, _e2, _h2 = run_em3d_sm(sm_machine, CONFIG)
    assert rsm.elapsed_cycles > 1.2 * rmp.elapsed_cycles


def test_local_allocation_reduces_remote_misses():
    """Paper Table 17: local placement turns remote misses local.

    The effect requires the paper's geometry — a per-processor working
    set larger than the cache, so a processor re-misses on its *own*
    structure data, whose home is remote under round-robin placement but
    local under local placement. Scale the cache below the working set.
    """
    config = Em3dConfig.small(nodes_per_proc=60, degree=5, iterations=3)
    params = MachineParams.paper(num_processors=4).with_cache_bytes(4096)
    r_rr, _e, _h = run_em3d_sm(SmMachine(params, seed=2), config)
    local_machine = SmMachine(
        params, seed=2, allocation_policy=HomePolicy.LOCAL
    )
    r_local, _e2, _h2 = run_em3d_sm(local_machine, config)
    rr_remote = r_rr.board.mean_count("shared_misses_remote", phase="main")
    local_remote = r_local.board.mean_count("shared_misses_remote", phase="main")
    assert local_remote < 0.5 * rr_remote
    assert r_local.elapsed_cycles < r_rr.elapsed_cycles


def test_bigger_cache_reduces_sm_misses():
    """Paper Table 16: a larger cache removes the capacity misses."""
    config = Em3dConfig.small(nodes_per_proc=60, degree=5, iterations=3)
    small_cache = MachineParams.paper(num_processors=4).with_cache_bytes(4096)
    big_cache = MachineParams.paper(num_processors=4).with_cache_bytes(16384)
    r_small, _e, _h = run_em3d_sm(SmMachine(small_cache, seed=2), config)
    r_big, _e2, _h2 = run_em3d_sm(SmMachine(big_cache, seed=2), config)
    small_misses = r_small.board.mean_count("shared_misses_remote", phase="main")
    big_misses = r_big.board.mean_count("shared_misses_remote", phase="main")
    assert big_misses < 0.6 * small_misses
    assert r_big.elapsed_cycles < r_small.elapsed_cycles
