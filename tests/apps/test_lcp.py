"""Tests for the LCP application pair (sync and async variants)."""

import numpy as np
import pytest

from repro.apps.lcp.common import (
    LcpConfig,
    generate_problem,
    psor_row_update,
    row_block,
)
from repro.apps.lcp.mp import run_lcp_mp
from repro.apps.lcp.sm import run_lcp_sm
from repro.arch.params import MachineParams
from repro.mp.machine import MpMachine
from repro.sm.machine import SmMachine
from repro.stats.categories import MpCat, SmCat

CONFIG = LcpConfig.small(n=48, tolerance=1e-5)


def dense_m(problem):
    n = problem.n
    m = np.zeros((n, n))
    for i in range(n):
        cols, vals = problem.row(i)
        m[i, cols] = vals
    m[np.arange(n), np.arange(n)] = problem.diag
    return m


def test_problem_matrix_is_symmetric():
    problem = generate_problem(CONFIG)
    m = dense_m(problem)
    assert np.allclose(m, m.T)


def test_problem_is_diagonally_dominant():
    problem = generate_problem(CONFIG)
    m = dense_m(problem)
    off = np.abs(m).sum(axis=1) - np.abs(np.diag(m))
    assert (np.abs(np.diag(m)) > off).all()


def test_rows_have_uniform_nnz_away_from_boundary():
    problem = generate_problem(LcpConfig.small(n=64))
    counts = np.diff(problem.indptr)
    interior = counts[8:-8]
    assert len(set(interior.tolist())) == 1


def test_serial_psor_converges():
    problem = generate_problem(CONFIG)
    z = np.zeros(problem.n)
    for _ in range(400):
        for i in range(problem.n):
            z[i] = psor_row_update(problem, z, i, omega=1.0)
    assert problem.complementarity_residual(z) < 1e-6
    # Solution properties: z >= 0 and Mz + q >= 0 (within tolerance).
    assert (z >= 0).all()
    assert (problem.mz_plus_q(z) >= -1e-6).all()


def test_lcp_mp_converges():
    machine = MpMachine(MachineParams.paper(num_processors=4), seed=3)
    result, z, steps = run_lcp_mp(machine, CONFIG)
    problem = generate_problem(CONFIG)
    assert problem.complementarity_residual(z) < 1e-4
    assert 0 < steps < CONFIG.max_steps
    # Every processor returns the same step count.
    assert len({s for (_z, s) in result.outputs}) == 1


def test_lcp_sm_converges():
    machine = SmMachine(MachineParams.paper(num_processors=4), seed=3)
    result, z, steps = run_lcp_sm(machine, CONFIG)
    problem = generate_problem(CONFIG)
    assert problem.complementarity_residual(z) < 1e-4
    assert 0 < steps < CONFIG.max_steps


def test_sync_pair_identical_iterates():
    """LCP-MP and LCP-SM run the same algorithm: same steps, same z."""
    _r1, z_mp, steps_mp = run_lcp_mp(
        MpMachine(MachineParams.paper(num_processors=4), seed=3), CONFIG
    )
    _r2, z_sm, steps_sm = run_lcp_sm(
        SmMachine(MachineParams.paper(num_processors=4), seed=3), CONFIG
    )
    assert steps_mp == steps_sm
    assert np.allclose(z_mp, z_sm)


def test_async_variants_converge():
    _r1, z1, steps_mp = run_lcp_mp(
        MpMachine(MachineParams.paper(num_processors=4), seed=3),
        CONFIG,
        asynchronous=True,
    )
    _r2, z2, steps_sm = run_lcp_sm(
        SmMachine(MachineParams.paper(num_processors=4), seed=3),
        CONFIG,
        asynchronous=True,
    )
    problem = generate_problem(CONFIG)
    assert problem.complementarity_residual(z1) < 1e-4
    assert problem.complementarity_residual(z2) < 1e-4
    assert steps_mp < CONFIG.max_steps
    assert steps_sm < CONFIG.max_steps


def test_async_converges_in_no_more_steps():
    """The paper: asynchronous updates reduce time steps (43 -> 34/35)."""
    _r, _z, steps_sync = run_lcp_sm(
        SmMachine(MachineParams.paper(num_processors=4), seed=3), CONFIG
    )
    _r2, _z2, steps_async = run_lcp_sm(
        SmMachine(MachineParams.paper(num_processors=4), seed=3),
        CONFIG,
        asynchronous=True,
    )
    assert steps_async <= steps_sync


def test_async_communicates_more():
    """The paper: async variants trade communication for convergence."""
    r_sync, _z, _s = run_lcp_mp(
        MpMachine(MachineParams.paper(num_processors=4), seed=3), CONFIG
    )
    r_async, _z2, _s2 = run_lcp_mp(
        MpMachine(MachineParams.paper(num_processors=4), seed=3),
        CONFIG,
        asynchronous=True,
    )
    sync_writes = r_sync.board.mean_count("channel_writes")
    async_writes = r_async.board.mean_count("channel_writes")
    assert async_writes > 2 * sync_writes
    assert r_async.board.mean_count("data_bytes") > r_sync.board.mean_count(
        "data_bytes"
    )


def test_sm_async_more_shared_traffic_per_step():
    """Async publishes every sweep: more coherence traffic per step.

    (Total traffic can still drop when async converges in far fewer
    steps — the tradeoff the paper quantifies as computation cycles per
    data byte transmitted.)
    """
    r_sync, _z, steps_sync = run_lcp_sm(
        SmMachine(MachineParams.paper(num_processors=4), seed=3), CONFIG
    )
    r_async, _z2, steps_async = run_lcp_sm(
        SmMachine(MachineParams.paper(num_processors=4), seed=3),
        CONFIG,
        asynchronous=True,
    )
    sync_traffic = (
        r_sync.board.mean_count("data_bytes", phase="main")
        + r_sync.board.mean_count("control_bytes", phase="main")
    ) / steps_sync
    async_traffic = (
        r_async.board.mean_count("data_bytes", phase="main")
        + r_async.board.mean_count("control_bytes", phase="main")
    ) / steps_async
    assert async_traffic > sync_traffic


def test_mp_sync_requires_power_of_two():
    machine = MpMachine(MachineParams.paper(num_processors=3), seed=3)
    with pytest.raises(ValueError):
        run_lcp_mp(machine, CONFIG)


def test_breakdown_categories_present():
    r_mp, _z, _s = run_lcp_mp(
        MpMachine(MachineParams.paper(num_processors=4), seed=3), CONFIG
    )
    assert r_mp.board.mean_cycles(MpCat.COMPUTE) > 0
    assert r_mp.board.mean_cycles(MpCat.LIB_COMPUTE) > 0
    r_sm, _z2, _s2 = run_lcp_sm(
        SmMachine(MachineParams.paper(num_processors=4), seed=3), CONFIG
    )
    assert r_sm.board.mean_cycles(SmCat.COMPUTE) > 0
    assert r_sm.board.mean_cycles(SmCat.SYNC_COMPUTE) > 0
    assert r_sm.board.mean_cycles(SmCat.BARRIER) > 0
