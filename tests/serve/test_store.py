"""Result-store seam: layout parity, concurrency, claims, tolerance."""

import json
import threading
import time

import pytest

from repro.runner.api import resolve_config
from repro.runner.cache import ResultCache, cache_key
from repro.runner.record import RunRecord
from repro.serve.eviction import enforce_budget
from repro.serve.store import (
    LocalDirStore,
    SharedDirStore,
    make_store,
)


def make_record(config, payload="x") -> RunRecord:
    return RunRecord(
        exp_id=config.exp_id,
        title="test",
        paper_tables="-",
        cache_key=cache_key(config),
        config=config.to_jsonable(),
        elapsed_seconds=0.01,
        checks=[["shape", True, payload]],
        rendered=payload,
        summary={"kind": "scalars", "data": {"payload": payload}},
    )


class TestFactoryAndParity:
    def test_make_store_kinds(self, tmp_path):
        assert isinstance(make_store("local", tmp_path), LocalDirStore)
        assert isinstance(make_store("shared", tmp_path), SharedDirStore)
        with pytest.raises(ValueError, match="unknown store kind"):
            make_store("s3", tmp_path)

    def test_cache_accepts_store_kind_string(self, tmp_path):
        cache = ResultCache(tmp_path / "c", store="shared")
        assert cache.coordinates_writers is True
        assert cache.blob_store.kind == "shared"

    def test_stores_produce_byte_identical_records(self, tmp_path):
        """The store choice changes no key and no record byte."""
        config = resolve_config("validation")
        record = make_record(config)
        local = ResultCache(tmp_path / "local")
        shared = ResultCache(tmp_path / "shared", store="shared")
        path_a = local.store(record)
        path_b = shared.store(record)
        assert path_a.name == path_b.name  # same content-addressed name
        assert path_a.read_bytes() == path_b.read_bytes()
        for cache in (local, shared):
            loaded = cache.load(config)
            assert loaded is not None and loaded.cached is True
            assert loaded.cache_key == record.cache_key

    def test_read_missing_returns_none(self, tmp_path):
        store = SharedDirStore(tmp_path)
        assert store.read("nope.json") is None
        assert store.touch("nope.json") is False
        assert store.delete("nope.json") is False


class TestConcurrentWriters:
    def test_two_writers_never_tear_a_record(self, tmp_path):
        """N threads rewriting one name: readers only ever see valid
        JSON equal to one complete write (atomic os.replace)."""
        store = SharedDirStore(tmp_path)
        payloads = [
            json.dumps({"writer": i, "fill": "z" * 2000}).encode("utf-8")
            for i in range(4)
        ]
        stop = threading.Event()
        torn = []

        def writer(data):
            while not stop.is_set():
                store.write("contended.json", data)

        def reader():
            while not stop.is_set():
                raw = store.read("contended.json")
                if raw is None:
                    continue
                try:
                    doc = json.loads(raw.decode("utf-8"))
                except json.JSONDecodeError:
                    torn.append(raw[:40])
                    return
                if raw not in payloads:
                    torn.append(raw[:40])
                    return
                assert "writer" in doc

        threads = [threading.Thread(target=writer, args=(p,)) for p in payloads]
        threads += [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        time.sleep(0.5)
        stop.set()
        for t in threads:
            t.join(5)
        assert not torn, f"reader observed a torn record: {torn}"
        assert store.read("contended.json") in payloads
        # No temp droppings left behind.
        assert list(tmp_path.glob("*.tmp.*")) == []

    def test_store_while_evict(self, tmp_path):
        """Writers racing an eviction pass: no exceptions, budget
        enforced, and listings never crash on vanishing files."""
        cache = ResultCache(tmp_path, store="shared")
        configs = [
            resolve_config("validation", {"seed": seed})
            for seed in range(1, 7)
        ]
        errors = []
        stop = threading.Event()

        def writer():
            try:
                while not stop.is_set():
                    for config in configs:
                        cache.store(make_record(config))
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        def evictor():
            try:
                while not stop.is_set():
                    enforce_budget(cache, budget_bytes=1)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        def lister():
            try:
                while not stop.is_set():
                    cache.index()
                    cache.total_bytes()
                    list(cache.entries())
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=writer),
            threading.Thread(target=evictor),
            threading.Thread(target=lister),
        ]
        for t in threads:
            t.start()
        time.sleep(0.6)
        stop.set()
        for t in threads:
            t.join(5)
        assert not errors, errors
        report = enforce_budget(cache, budget_bytes=1)
        assert report.bytes_after <= 1

    def test_corrupt_file_tolerance(self, tmp_path):
        cache = ResultCache(tmp_path, store="shared")
        config = resolve_config("validation")
        cache.store(make_record(config))
        (tmp_path / "garbage-0123456789abcdef.json").write_text("{not json")
        # load of the good record still works; listings mark the
        # garbage stale instead of crashing.
        assert cache.load(config) is not None
        index = cache.index()
        assert len(index) == 2
        assert any(entry.stale for entry in index)
        # Eviction reclaims the corrupt bytes first.
        good_bytes = next(e.bytes for e in index if not e.stale)
        report = enforce_budget(cache, budget_bytes=good_bytes)
        assert report.stale_evicted == 1
        assert cache.load(config) is not None


class TestClaims:
    def test_local_store_claims_are_trivial(self, tmp_path):
        store = LocalDirStore(tmp_path)
        assert store.coordinates_writers is False
        assert store.try_claim("a.json") and store.try_claim("a.json")
        assert store.claim_age("a.json") is None
        store.release_claim("a.json")

    def test_only_one_claimant_wins(self, tmp_path):
        store = SharedDirStore(tmp_path)
        wins = []
        barrier = threading.Barrier(6)

        def claimant():
            barrier.wait()
            if store.try_claim("key.json"):
                wins.append(threading.get_ident())

        threads = [threading.Thread(target=claimant) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(5)
        assert len(wins) == 1
        assert store.claim_age("key.json") is not None
        store.release_claim("key.json")
        assert store.claim_age("key.json") is None
        assert store.try_claim("key.json")
        store.release_claim("key.json")

    def test_stale_claim_is_broken(self, tmp_path):
        import os

        store = SharedDirStore(tmp_path, claim_ttl=0.05)
        assert store.try_claim("key.json")
        # Simulate a crashed claimant: age the lock past the TTL.
        lock = tmp_path / "key.json.lock"
        old = time.time() - 10.0
        os.utime(lock, (old, old))
        assert store.try_claim("key.json"), "stale claim must be breakable"
        store.release_claim("key.json")

    def test_claims_via_cache_config_api(self, tmp_path):
        cache = ResultCache(tmp_path, store="shared")
        config = resolve_config("validation")
        assert cache.try_claim(config)
        assert not cache.try_claim(config)
        assert cache.claim_age(config) is not None
        assert cache.claim_ttl is not None
        cache.release_claim(config)
        assert cache.claim_age(config) is None
        # Lock files never appear in record listings or byte totals.
        assert cache.index() == []
