"""Admission control: token buckets, queue bounds, 429/503 over HTTP."""

import threading
import time

import pytest

from repro.runner.cache import ResultCache
from repro.serve.admission import AdmissionError, RateLimiter, TokenBucket
from repro.serve.jobqueue import DONE, JobQueue, QueueShutdown
from repro.serve.schemas import RunRequest

from tests.serve.test_jobqueue import CountingExecutor, make_record


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3.0, now=clock())
        takes = [bucket.try_take(clock())[0] for _ in range(4)]
        assert takes == [True, True, True, False]
        _, wait = bucket.try_take(clock())
        assert wait == pytest.approx(0.5)  # one token at 2/s
        clock.now += 0.5
        assert bucket.try_take(clock())[0] is True

    def test_tokens_cap_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, now=clock())
        clock.now += 100.0
        results = [bucket.try_take(clock())[0] for _ in range(3)]
        assert results == [True, True, False]


class TestRateLimiter:
    def test_clients_are_independent(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=1.0, clock=clock)
        limiter.check("10.0.0.1")
        with pytest.raises(AdmissionError):
            limiter.check("10.0.0.1")
        limiter.check("10.0.0.2")  # a different client is unaffected

    def test_retry_after_is_sane(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=0.5, burst=1.0, clock=clock)
        limiter.check("c")
        with pytest.raises(AdmissionError) as excinfo:
            limiter.check("c")
        assert excinfo.value.retry_after >= 1.0
        assert int(excinfo.value.retry_after_header) >= 1

    def test_idle_buckets_are_pruned(self):
        clock = FakeClock()
        limiter = RateLimiter(
            rate=1.0, burst=1.0, max_clients=4, clock=clock
        )
        for i in range(4):
            limiter.check(f"client-{i}")
        clock.now += 100.0  # everyone refills → prunable
        limiter.check("client-new")
        assert limiter.clients() <= 2

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            RateLimiter(rate=0)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestQueueAdmission:
    def test_full_queue_refuses_cold_jobs(self, cache):
        gate = threading.Event()
        executor = CountingExecutor(gate=gate)
        queue = JobQueue(
            workers=1, cache=cache, run_executor=executor, max_pending=1
        )
        queue.start()
        try:
            queue.submit_run(RunRequest(exp_id="validation"))
            # Wait until the worker has taken the first job off the
            # queue so exactly one slot of backlog remains.
            deadline = time.time() + 5
            while queue.depth() > 0 and time.time() < deadline:
                time.sleep(0.02)
            waiting = queue.submit_run(
                RunRequest(exp_id="validation", overrides={"seed": 2})
            )
            assert waiting.state == "pending"
            with pytest.raises(AdmissionError) as excinfo:
                queue.submit_run(
                    RunRequest(exp_id="validation", overrides={"seed": 3})
                )
            assert excinfo.value.retry_after >= 1.0
            # The refused job was never registered: polling its ID is
            # a miss, not a stuck pending envelope.
            assert queue.registry.counts()["pending"] == 1
        finally:
            gate.set()
            queue.stop()

    def test_warm_submissions_bypass_a_full_queue(self, cache):
        from repro.runner.api import resolve_config

        config = resolve_config("validation")
        cache.store(make_record(config, payload="warm"))
        queue = JobQueue(
            workers=1, cache=cache,
            run_executor=CountingExecutor(), max_pending=0,
        )
        queue.start()
        try:
            # max_pending=0 refuses every cold job...
            with pytest.raises(AdmissionError):
                queue.submit_run(
                    RunRequest(exp_id="validation", overrides={"seed": 9})
                )
            # ...but the warm path costs nothing and is never refused.
            job = queue.submit_run(RunRequest(exp_id="validation"))
            assert job.state == DONE
            assert job.simulated is False
        finally:
            queue.stop()

    def test_coalesced_submissions_bypass_a_full_queue(self, cache):
        gate = threading.Event()
        executor = CountingExecutor(gate=gate)
        queue = JobQueue(
            workers=1, cache=cache, run_executor=executor, max_pending=1
        )
        queue.start()
        try:
            first = queue.submit_run(RunRequest(exp_id="validation"))
            rider = queue.submit_run(RunRequest(exp_id="validation"))
            assert rider is first
            assert first.coalesced == 1
            gate.set()
            assert first.wait(10)
            assert executor.calls == 1
        finally:
            gate.set()
            queue.stop()

    def test_retry_after_scales_with_backlog(self, cache):
        queue = JobQueue(
            workers=2, cache=cache, run_executor=CountingExecutor()
        )
        assert 1.0 <= queue.retry_after_hint() <= 120.0
        queue._avg_seconds = 10.0
        assert queue.retry_after_hint() >= 1.0


class TestShutdownRefusal:
    def test_submissions_after_stop_get_queue_shutdown(self, cache):
        queue = JobQueue(
            workers=1, cache=cache, run_executor=CountingExecutor()
        )
        queue.start()
        queue.stop()
        with pytest.raises(QueueShutdown):
            queue.submit_run(RunRequest(exp_id="validation"))

    def test_warm_answers_survive_shutdown(self, cache):
        from repro.runner.api import resolve_config

        config = resolve_config("validation")
        cache.store(make_record(config, payload="warm"))
        queue = JobQueue(
            workers=1, cache=cache, run_executor=CountingExecutor()
        )
        queue.start()
        queue.stop()
        job = queue.submit_run(RunRequest(exp_id="validation"))
        assert job.state == DONE and job.simulated is False


class TestHttpAdmission:
    def test_rate_limited_post_gets_429_with_retry_after(self, tmp_path):
        import json
        import urllib.error
        import urllib.request

        from repro import api
        from repro.serve import inprocess_run_executor

        server = api.serve(
            port=0,
            block=False,
            jobs=1,
            cache=ResultCache(tmp_path / "cache"),
            run_executor=inprocess_run_executor,
            rate_limit=0.001,  # one request, then a long refill
            rate_burst=1.0,
            quiet=True,
        )
        try:
            body = json.dumps({"experiment": "validation"}).encode()

            def submit():
                request = urllib.request.Request(
                    server.url + "/v1/runs", data=body,
                    headers={"Content-Type": "application/json"},
                )
                return urllib.request.urlopen(request, timeout=10)

            first = submit()
            assert first.status in (200, 202)
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                submit()
            assert excinfo.value.code == 429
            assert int(excinfo.value.headers["Retry-After"]) >= 1
            payload = json.loads(excinfo.value.read())
            assert "rate limit" in payload["error"]
            # Keep-alive connections stay usable after a 429: GETs are
            # not rate limited.
            with urllib.request.urlopen(
                server.url + "/healthz", timeout=10
            ) as response:
                assert response.status == 200
        finally:
            server.stop()

    def test_full_queue_gets_429_over_http(self, tmp_path):
        import json
        import urllib.error
        import urllib.request

        from repro import api

        gate = threading.Event()
        executor = CountingExecutor(gate=gate)
        server = api.serve(
            port=0,
            block=False,
            jobs=1,
            cache=ResultCache(tmp_path / "cache"),
            run_executor=executor,
            max_pending=0,
            quiet=True,
        )
        try:
            request = urllib.request.Request(
                server.url + "/v1/runs",
                data=json.dumps({"experiment": "validation"}).encode(),
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 429
            assert "Retry-After" in excinfo.value.headers
            assert "queue full" in json.loads(excinfo.value.read())["error"]
        finally:
            gate.set()
            server.stop()
