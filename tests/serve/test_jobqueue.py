"""Job queue behavior: coalescing, warm path, failure, force."""

import threading
import time

import pytest

from repro.runner.api import resolve_config
from repro.runner.cache import ResultCache, cache_key
from repro.runner.record import RunRecord
from repro.serve.jobqueue import DONE, FAILED, JobQueue
from repro.serve.schemas import RunRequest, SchemaError, SweepRequest


def make_record(config, payload="x") -> RunRecord:
    """A well-formed record for ``config`` without simulating."""
    return RunRecord(
        exp_id=config.exp_id,
        title="test",
        paper_tables="-",
        cache_key=cache_key(config),
        config=config.to_jsonable(),
        elapsed_seconds=0.01,
        checks=[["shape", True, payload]],
        rendered=payload,
        summary={"kind": "scalars", "data": {"payload": payload}},
    )


class CountingExecutor:
    """A run executor that counts calls and can block on a gate."""

    def __init__(self, gate=None, fail=False):
        self.calls = 0
        self.lock = threading.Lock()
        self.gate = gate
        self.fail = fail

    def __call__(self, request: RunRequest) -> RunRecord:
        with self.lock:
            self.calls += 1
        if self.gate is not None:
            assert self.gate.wait(10), "executor gate never opened"
        if self.fail:
            raise RuntimeError("injected simulation failure")
        config = resolve_config(request.exp_id, request.overrides or None)
        return make_record(config)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


def make_queue(cache, executor, workers=2, **kwargs):
    queue = JobQueue(
        workers=workers, cache=cache, run_executor=executor, **kwargs
    )
    queue.start()
    return queue


class TestCoalescing:
    def test_concurrent_identical_submissions_share_one_simulation(self, cache):
        gate = threading.Event()
        executor = CountingExecutor(gate=gate)
        queue = make_queue(cache, executor, workers=2)
        try:
            request = RunRequest(exp_id="validation")
            jobs, threads = [], []
            lock = threading.Lock()

            def submit():
                job = queue.submit_run(request)
                with lock:
                    jobs.append(job)

            for _ in range(8):
                thread = threading.Thread(target=submit)
                thread.start()
                threads.append(thread)
            for thread in threads:
                thread.join(10)
            gate.set()

            assert len(jobs) == 8
            assert len({job.job_id for job in jobs}) == 1
            assert len({id(job) for job in jobs}) == 1  # the same Job object
            assert jobs[0].wait(10)
            assert jobs[0].state == DONE
            assert jobs[0].simulated is True
            assert jobs[0].coalesced == 7
            assert executor.calls == 1, "identical submissions must coalesce"
        finally:
            gate.set()
            queue.stop()

    def test_distinct_configs_get_distinct_jobs(self, cache):
        executor = CountingExecutor()
        queue = make_queue(cache, executor)
        try:
            a = queue.submit_run(RunRequest(exp_id="validation"))
            b = queue.submit_run(
                RunRequest(exp_id="validation", overrides={"seed": 7})
            )
            assert a.job_id != b.job_id
            assert a.wait(10) and b.wait(10)
            assert executor.calls == 2
        finally:
            queue.stop()

    def test_job_id_is_the_cache_key(self, cache):
        executor = CountingExecutor()
        queue = make_queue(cache, executor)
        try:
            job = queue.submit_run(RunRequest(exp_id="validation"))
            assert job.job_id == cache_key(resolve_config("validation"))
        finally:
            queue.stop()


class TestWarmPath:
    def test_cached_record_served_without_simulation(self, cache):
        config = resolve_config("validation")
        cache.store(make_record(config, payload="warm"))
        executor = CountingExecutor()
        queue = make_queue(cache, executor)
        try:
            started = time.perf_counter()
            job = queue.submit_run(RunRequest(exp_id="validation"))
            elapsed = time.perf_counter() - started
            assert job.state == DONE  # terminal at submission time
            assert job.simulated is False
            assert job.result["rendered"] == "warm"
            assert executor.calls == 0
            assert elapsed < 0.25, f"warm path took {elapsed:.3f}s"
        finally:
            queue.stop()

    def test_resubmission_after_cold_run_is_warm(self, cache):
        executor = CountingExecutor()
        queue = make_queue(cache, executor)
        try:
            first = queue.submit_run(RunRequest(exp_id="validation"))
            assert first.wait(10) and first.simulated is True
            second = queue.submit_run(RunRequest(exp_id="validation"))
            assert second.state == DONE
            assert second.simulated is False
            assert executor.calls == 1
            assert second.result["cache_key"] == first.result["cache_key"]
        finally:
            queue.stop()

    def test_force_resubmission_simulates_again(self, cache):
        executor = CountingExecutor()
        queue = make_queue(cache, executor)
        try:
            first = queue.submit_run(RunRequest(exp_id="validation"))
            assert first.wait(10)
            forced = queue.submit_run(
                RunRequest(exp_id="validation", force=True)
            )
            assert forced is not first
            assert forced.wait(10)
            assert forced.simulated is True
            assert executor.calls == 2
        finally:
            queue.stop()


class TestFailuresAndValidation:
    def test_executor_failure_fails_the_job(self, cache):
        executor = CountingExecutor(fail=True)
        queue = make_queue(cache, executor)
        try:
            job = queue.submit_run(RunRequest(exp_id="validation"))
            assert job.wait(10)
            assert job.state == FAILED
            assert "injected simulation failure" in job.error
        finally:
            queue.stop()

    def test_unknown_experiment_rejected_at_submission(self, cache):
        queue = JobQueue(cache=cache, run_executor=CountingExecutor())
        with pytest.raises(SchemaError, match="unknown experiment"):
            queue.submit_run(RunRequest(exp_id="not-an-experiment"))

    def test_bad_override_rejected_with_suggestion(self, cache):
        queue = JobQueue(cache=cache, run_executor=CountingExecutor())
        with pytest.raises(SchemaError, match="did you mean"):
            queue.submit_run(
                RunRequest(exp_id="validation", overrides={"sed": 3})
            )

    def test_unknown_sweep_rejected_at_submission(self, cache):
        queue = JobQueue(cache=cache)
        with pytest.raises(SchemaError, match="unknown sweep"):
            queue.submit_sweep(SweepRequest(spec="not-a-sweep"))


class TestSweepJobs:
    def test_sweep_executor_wiring_and_simulated_flag(self, cache):
        class FakeSweepResult:
            def to_jsonable(self):
                return {"points": [], "meta": {"simulated": 0, "cached": 3}}

        calls = []

        def sweep_executor(request, the_cache):
            calls.append((request, the_cache))
            return FakeSweepResult()

        queue = JobQueue(cache=cache, sweep_executor=sweep_executor)
        queue.start()
        try:
            job = queue.submit_sweep(
                SweepRequest(
                    spec="em3d-latency", axes={"net_latency": [0, 100]}
                )
            )
            assert job.wait(10)
            assert job.state == DONE
            assert job.simulated is False  # all points came from the cache
            assert calls and calls[0][1] is cache
            assert calls[0][0].axes == {"net_latency": [0, 100]}
        finally:
            queue.stop()

    def test_identical_sweeps_coalesce(self, cache):
        gate = threading.Event()
        calls = []

        def sweep_executor(request, the_cache):
            calls.append(request)
            assert gate.wait(10)
            return {"meta": {"simulated": 1}}

        queue = JobQueue(
            workers=2, cache=cache, sweep_executor=sweep_executor
        )
        queue.start()
        try:
            request = SweepRequest(
                spec="em3d-latency", axes={"net_latency": [0, 50]}
            )
            a = queue.submit_sweep(request)
            b = queue.submit_sweep(request)
            gate.set()
            assert a is b
            assert a.wait(10)
            assert len(calls) == 1
        finally:
            gate.set()
            queue.stop()
