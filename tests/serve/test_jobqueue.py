"""Job queue behavior: coalescing, warm path, failure, force."""

import threading
import time

import pytest

from repro.runner.api import resolve_config
from repro.runner.cache import ResultCache, cache_key
from repro.runner.record import RunRecord
from repro.serve.jobqueue import DONE, FAILED, JobQueue
from repro.serve.schemas import RunRequest, SchemaError, SweepRequest


def make_record(config, payload="x") -> RunRecord:
    """A well-formed record for ``config`` without simulating."""
    return RunRecord(
        exp_id=config.exp_id,
        title="test",
        paper_tables="-",
        cache_key=cache_key(config),
        config=config.to_jsonable(),
        elapsed_seconds=0.01,
        checks=[["shape", True, payload]],
        rendered=payload,
        summary={"kind": "scalars", "data": {"payload": payload}},
    )


class CountingExecutor:
    """A run executor that counts calls and can block on a gate."""

    def __init__(self, gate=None, fail=False):
        self.calls = 0
        self.lock = threading.Lock()
        self.gate = gate
        self.fail = fail

    def __call__(self, request: RunRequest) -> RunRecord:
        with self.lock:
            self.calls += 1
        if self.gate is not None:
            assert self.gate.wait(10), "executor gate never opened"
        if self.fail:
            raise RuntimeError("injected simulation failure")
        config = resolve_config(request.exp_id, request.overrides or None)
        return make_record(config)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


def make_queue(cache, executor, workers=2, **kwargs):
    queue = JobQueue(
        workers=workers, cache=cache, run_executor=executor, **kwargs
    )
    queue.start()
    return queue


class TestCoalescing:
    def test_concurrent_identical_submissions_share_one_simulation(self, cache):
        gate = threading.Event()
        executor = CountingExecutor(gate=gate)
        queue = make_queue(cache, executor, workers=2)
        try:
            request = RunRequest(exp_id="validation")
            jobs, threads = [], []
            lock = threading.Lock()

            def submit():
                job = queue.submit_run(request)
                with lock:
                    jobs.append(job)

            for _ in range(8):
                thread = threading.Thread(target=submit)
                thread.start()
                threads.append(thread)
            for thread in threads:
                thread.join(10)
            gate.set()

            assert len(jobs) == 8
            assert len({job.job_id for job in jobs}) == 1
            assert len({id(job) for job in jobs}) == 1  # the same Job object
            assert jobs[0].wait(10)
            assert jobs[0].state == DONE
            assert jobs[0].simulated is True
            assert jobs[0].coalesced == 7
            assert executor.calls == 1, "identical submissions must coalesce"
        finally:
            gate.set()
            queue.stop()

    def test_distinct_configs_get_distinct_jobs(self, cache):
        executor = CountingExecutor()
        queue = make_queue(cache, executor)
        try:
            a = queue.submit_run(RunRequest(exp_id="validation"))
            b = queue.submit_run(
                RunRequest(exp_id="validation", overrides={"seed": 7})
            )
            assert a.job_id != b.job_id
            assert a.wait(10) and b.wait(10)
            assert executor.calls == 2
        finally:
            queue.stop()

    def test_job_id_is_the_cache_key(self, cache):
        executor = CountingExecutor()
        queue = make_queue(cache, executor)
        try:
            job = queue.submit_run(RunRequest(exp_id="validation"))
            assert job.job_id == cache_key(resolve_config("validation"))
        finally:
            queue.stop()


class TestWarmPath:
    def test_cached_record_served_without_simulation(self, cache):
        config = resolve_config("validation")
        cache.store(make_record(config, payload="warm"))
        executor = CountingExecutor()
        queue = make_queue(cache, executor)
        try:
            started = time.perf_counter()
            job = queue.submit_run(RunRequest(exp_id="validation"))
            elapsed = time.perf_counter() - started
            assert job.state == DONE  # terminal at submission time
            assert job.simulated is False
            assert job.result["rendered"] == "warm"
            assert executor.calls == 0
            assert elapsed < 0.25, f"warm path took {elapsed:.3f}s"
        finally:
            queue.stop()

    def test_resubmission_after_cold_run_is_warm(self, cache):
        executor = CountingExecutor()
        queue = make_queue(cache, executor)
        try:
            first = queue.submit_run(RunRequest(exp_id="validation"))
            assert first.wait(10) and first.simulated is True
            second = queue.submit_run(RunRequest(exp_id="validation"))
            assert second.state == DONE
            assert second.simulated is False
            assert executor.calls == 1
            assert second.result["cache_key"] == first.result["cache_key"]
        finally:
            queue.stop()

    def test_force_resubmission_simulates_again(self, cache):
        executor = CountingExecutor()
        queue = make_queue(cache, executor)
        try:
            first = queue.submit_run(RunRequest(exp_id="validation"))
            assert first.wait(10)
            forced = queue.submit_run(
                RunRequest(exp_id="validation", force=True)
            )
            assert forced is not first
            assert forced.wait(10)
            assert forced.simulated is True
            assert executor.calls == 2
        finally:
            queue.stop()


class TestFailuresAndValidation:
    def test_executor_failure_fails_the_job(self, cache):
        executor = CountingExecutor(fail=True)
        queue = make_queue(cache, executor)
        try:
            job = queue.submit_run(RunRequest(exp_id="validation"))
            assert job.wait(10)
            assert job.state == FAILED
            assert "injected simulation failure" in job.error
        finally:
            queue.stop()

    def test_unknown_experiment_rejected_at_submission(self, cache):
        queue = JobQueue(cache=cache, run_executor=CountingExecutor())
        with pytest.raises(SchemaError, match="unknown experiment"):
            queue.submit_run(RunRequest(exp_id="not-an-experiment"))

    def test_bad_override_rejected_with_suggestion(self, cache):
        queue = JobQueue(cache=cache, run_executor=CountingExecutor())
        with pytest.raises(SchemaError, match="did you mean"):
            queue.submit_run(
                RunRequest(exp_id="validation", overrides={"sed": 3})
            )

    def test_unknown_sweep_rejected_at_submission(self, cache):
        queue = JobQueue(cache=cache)
        with pytest.raises(SchemaError, match="unknown sweep"):
            queue.submit_sweep(SweepRequest(spec="not-a-sweep"))


class TestSweepJobs:
    def test_sweep_executor_wiring_and_simulated_flag(self, cache):
        class FakeSweepResult:
            def to_jsonable(self):
                return {"points": [], "meta": {"simulated": 0, "cached": 3}}

        calls = []

        def sweep_executor(request, the_cache):
            calls.append((request, the_cache))
            return FakeSweepResult()

        queue = JobQueue(cache=cache, sweep_executor=sweep_executor)
        queue.start()
        try:
            job = queue.submit_sweep(
                SweepRequest(
                    spec="em3d-latency", axes={"net_latency": [0, 100]}
                )
            )
            assert job.wait(10)
            assert job.state == DONE
            assert job.simulated is False  # all points came from the cache
            assert calls and calls[0][1] is cache
            assert calls[0][0].axes == {"net_latency": [0, 100]}
        finally:
            queue.stop()

    def test_identical_sweeps_coalesce(self, cache):
        gate = threading.Event()
        calls = []

        def sweep_executor(request, the_cache):
            calls.append(request)
            assert gate.wait(10)
            return {"meta": {"simulated": 1}}

        queue = JobQueue(
            workers=2, cache=cache, sweep_executor=sweep_executor
        )
        queue.start()
        try:
            request = SweepRequest(
                spec="em3d-latency", axes={"net_latency": [0, 50]}
            )
            a = queue.submit_sweep(request)
            b = queue.submit_sweep(request)
            gate.set()
            assert a is b
            assert a.wait(10)
            assert len(calls) == 1
        finally:
            gate.set()
            queue.stop()


class TestGracefulDrain:
    def test_stop_fails_backlog_and_lets_running_finish(self, cache):
        """A deep queue must not block shutdown: pending jobs reach a
        terminal state immediately, the running job completes."""
        gate = threading.Event()
        executor = CountingExecutor(gate=gate)
        queue = make_queue(cache, executor, workers=1)
        jobs = [
            queue.submit_run(
                RunRequest(exp_id="validation", overrides={"seed": seed})
            )
            for seed in range(1, 6)
        ]
        # Let the single worker take the first job (it blocks on the gate).
        deadline = time.time() + 5
        while queue.depth() >= len(jobs) and time.time() < deadline:
            time.sleep(0.02)

        stopped = threading.Event()

        def stopper():
            queue.stop(timeout=0.5)
            stopped.set()

        thread = threading.Thread(target=stopper)
        thread.start()
        try:
            # All still-pending jobs fail fast — clients unblock now,
            # while the executor gate is still closed.
            pending = [job for job in jobs if job is not jobs[0]]
            for job in pending:
                assert job.wait(5), "pending job never reached terminal state"
                assert job.state == FAILED
                assert "shutting down" in job.error
            # The running job is allowed to finish once the gate opens.
            gate.set()
            assert jobs[0].wait(10)
            assert jobs[0].state == DONE
            assert stopped.wait(10), "stop() blocked on the backlog"
        finally:
            gate.set()
            thread.join(10)

    def test_stop_is_idempotent_and_quick_when_idle(self, cache):
        queue = make_queue(cache, CountingExecutor())
        started = time.perf_counter()
        queue.stop()
        queue.stop()
        assert time.perf_counter() - started < 2.0


class TestEnvelopeAtomicity:
    def test_no_torn_envelope_under_serialization_hammer(self, cache):
        """Readers serializing envelopes during transitions must never
        observe a terminal state with unassembled fields."""
        from repro.serve.jobqueue import Job

        violations = []
        stop = threading.Event()
        jobs = [
            Job(job_id=f"hammer-{i}", kind="run", params={})
            for i in range(50)
        ]

        def reader():
            while not stop.is_set():
                for job in jobs:
                    env = job.to_jsonable()
                    if env["state"] == "done" and (
                        env["finished_at"] is None
                        or env["result"] is None
                        or env["simulated"] is None
                        or env["elapsed_seconds"] is None
                    ):
                        violations.append(env)
                    if env["state"] == "failed" and (
                        env["finished_at"] is None or not env["error"]
                    ):
                        violations.append(env)

        readers = [threading.Thread(target=reader) for _ in range(4)]
        for thread in readers:
            thread.start()

        def transition(job, index):
            assert job.try_start()
            if index % 3 == 0:
                job.fail("injected failure")
            else:
                job.finish({"payload": index}, simulated=True)

        writers = [
            threading.Thread(target=transition, args=(job, i))
            for i, job in enumerate(jobs)
        ]
        for thread in writers:
            thread.start()
        for thread in writers:
            thread.join(5)
        time.sleep(0.1)
        stop.set()
        for thread in readers:
            thread.join(5)
        assert not violations, violations[:3]

    def test_try_start_claims_exactly_once(self, cache):
        from repro.serve.jobqueue import Job

        job = Job(job_id="once", kind="run", params={})
        wins = []
        barrier = threading.Barrier(8)

        def claim():
            barrier.wait()
            if job.try_start():
                wins.append(1)

        threads = [threading.Thread(target=claim) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(5)
        assert len(wins) == 1
        assert job.state == "running"
        # A drain cannot fail a job a worker already started.
        assert job.fail_if_pending("drain") is False


class TestRegistryRetention:
    def test_terminal_jobs_pruned_by_ttl(self, cache):
        from repro.serve.coalesce import CoalescingRegistry
        from repro.serve.jobqueue import Job

        registry = CoalescingRegistry(retention_seconds=0.05, max_terminal=None)
        done = Job(job_id="old-done", kind="run", params={})
        assert done.try_start()
        done.finish({"ok": 1}, simulated=True)
        registry.add_or_share(done)
        inflight = Job(job_id="inflight", kind="run", params={})
        registry.add_or_share(inflight)

        time.sleep(0.1)
        counts = registry.counts()
        assert counts["done"] == 0, "terminal job must be pruned after TTL"
        assert counts["pending"] == 1, "in-flight jobs are never pruned"
        assert counts["pruned"] == 1
        assert registry.get("old-done") is None
        assert registry.get("inflight") is inflight

    def test_terminal_jobs_pruned_by_count_cap(self, cache):
        from repro.serve.coalesce import CoalescingRegistry
        from repro.serve.jobqueue import Job

        registry = CoalescingRegistry(retention_seconds=None, max_terminal=3)
        for i in range(6):
            job = Job(job_id=f"job-{i}", kind="run", params={})
            assert job.try_start()
            job.finish({"i": i}, simulated=True)
            registry.add_or_share(job)
            time.sleep(0.01)  # distinct finished_at ordering
        counts = registry.counts()
        assert counts["done"] == 3
        # Oldest-finished go first.
        assert registry.get("job-0") is None
        assert registry.get("job-5") is not None

    def test_pruned_run_is_reanswered_warm_from_the_cache(self, cache):
        """Pruning an envelope loses nothing: the record is still in
        the content-addressed store under the same ID."""
        executor = CountingExecutor()
        queue = JobQueue(
            workers=1, cache=cache, run_executor=executor,
            retention_seconds=0.05, max_terminal=None,
        )
        queue.start()
        try:
            first = queue.submit_run(RunRequest(exp_id="validation"))
            assert first.wait(10) and first.state == DONE
            time.sleep(0.15)
            queue.registry.prune()
            assert queue.registry.get(first.job_id) is None  # pruned
            again = queue.submit_run(RunRequest(exp_id="validation"))
            assert again.state == DONE
            assert again.simulated is False
            assert executor.calls == 1
        finally:
            queue.stop()


class TestSharedStoreCoordination:
    def test_two_queues_one_simulation_fleet_wide(self, tmp_path):
        """Two 'replicas' (JobQueues) on one SharedDirStore: identical
        concurrent cold submissions cost exactly one simulation, and
        both serve the same record."""
        from repro.serve.store import SharedDirStore

        store_dir = tmp_path / "shared"
        caches = [
            ResultCache(store=SharedDirStore(store_dir)) for _ in range(2)
        ]
        executors = [CountingExecutor(), CountingExecutor()]
        queues = [
            JobQueue(workers=1, cache=cache, run_executor=executor,
                     peer_poll_seconds=0.02)
            for cache, executor in zip(caches, executors)
        ]
        for queue in queues:
            queue.start()
        try:
            request = RunRequest(exp_id="validation")
            barrier = threading.Barrier(2)
            jobs = [None, None]

            def submit(i):
                barrier.wait()
                jobs[i] = queues[i].submit_run(request)

            threads = [
                threading.Thread(target=submit, args=(i,)) for i in range(2)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(10)

            for job in jobs:
                assert job is not None and job.wait(15)
                assert job.state == DONE, job.error
            total_sims = executors[0].calls + executors[1].calls
            assert total_sims == 1, (
                f"expected one simulation fleet-wide, got {total_sims}"
            )
            assert sum(1 for job in jobs if job.simulated) == 1
            # Bit-identical envelopes: the record is the record.
            assert jobs[0].result == jobs[1].result
            # No claim droppings left behind.
            assert list(store_dir.glob("*.lock")) == []
        finally:
            for queue in queues:
                queue.stop()

    def test_peer_crash_claim_is_taken_over(self, tmp_path):
        """A stale claim (crashed replica) must not wedge the job: the
        survivor breaks it and simulates."""
        from repro.runner.api import resolve_config
        from repro.serve.store import SharedDirStore

        cache = ResultCache(store=SharedDirStore(
            tmp_path / "shared", claim_ttl=0.1,
        ))
        config = resolve_config("validation")
        assert cache.try_claim(config)  # the "crashed" peer's claim
        executor = CountingExecutor()
        queue = JobQueue(
            workers=1, cache=cache, run_executor=executor,
            peer_poll_seconds=0.02,
        )
        queue.start()
        try:
            job = queue.submit_run(RunRequest(exp_id="validation"))
            assert job.wait(15)
            assert job.state == DONE, job.error
            assert job.simulated is True
            assert executor.calls == 1
        finally:
            queue.stop()
