"""End-to-end HTTP tests: real sockets, real validation experiment.

The server under test binds an ephemeral port on localhost and runs
with the in-process run executor (the spawn executor is exercised by
the CI ``serve-smoke`` job against a real ``repro serve`` process, and
by ``tools/serve_smoke.py`` locally).
"""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro import api
from repro.runner.cache import ResultCache
from repro.serve import inprocess_run_executor


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    cache = ResultCache(tmp_path_factory.mktemp("serve") / "cache")
    instance = api.serve(
        port=0,
        block=False,
        jobs=1,
        cache=cache,
        run_executor=inprocess_run_executor,
        quiet=True,
    )
    yield instance
    instance.stop()


def get(server, path):
    try:
        with urllib.request.urlopen(server.url + path, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def post(server, path, body):
    request = urllib.request.Request(
        server.url + path,
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def poll(server, job_id, timeout=60.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        status, job = get(server, f"/v1/jobs/{job_id}")
        assert status == 200
        if job["state"] in ("done", "failed"):
            return job
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} never finished")


class TestHealthz:
    def test_health_document(self, server):
        status, health = get(server, "/healthz")
        assert status == 200
        assert health["status"] == "ok"
        assert health["uptime_seconds"] >= 0
        assert health["heartbeat"] >= health["started_at"]
        assert set(health["queue"]["jobs"]) == {
            "pending", "running", "done", "failed",
        }
        assert "bytes" in health["cache"]
        assert "records" in health["cache"]

    def test_experiments_listing(self, server):
        status, listing = get(server, "/v1/experiments")
        assert status == 200
        ids = [entry["id"] for entry in listing["experiments"]]
        assert "validation" in ids and "em3d" in ids


class TestRunLifecycle:
    def test_cold_then_warm_roundtrip(self, server):
        body = {"experiment": "validation"}
        status, submitted = post(server, "/v1/runs", body)
        assert status in (200, 202)
        job = poll(server, submitted["job_id"])
        assert job["state"] == "done", job["error"]
        assert job["result"]["exp_id"] == "validation"
        assert all(ok for _n, ok, _d in job["result"]["checks"])

        # The stored record is exactly what `repro run` would serve
        # from its cache for the same configuration.
        record = api.record_for("validation", cache=server.cache)
        assert record.cached is True
        assert record.cache_key == job["result"]["cache_key"]
        assert record.summary == job["result"]["summary"]
        assert record.rendered == job["result"]["rendered"]

        # Identical resubmission: answered complete at submission time,
        # from the cache, with zero simulation, in under 250ms.
        started = time.perf_counter()
        status, warm = post(server, "/v1/runs", body)
        round_trip = time.perf_counter() - started
        assert status == 200
        assert warm["state"] == "done"
        assert warm["simulated"] is False
        assert round_trip < 0.25, f"warm round trip {round_trip:.3f}s"
        assert warm["result"]["summary"] == job["result"]["summary"]

    def test_submission_response_carries_job_envelope(self, server):
        status, job = post(
            server, "/v1/runs",
            {"experiment": "validation", "overrides": {"seed": 77}},
        )
        assert status in (200, 202)
        for field in ("job_id", "kind", "state", "params", "submitted_at"):
            assert field in job
        assert job["kind"] == "run"
        done = poll(server, job["job_id"])
        assert done["state"] == "done"

    def test_jobs_listing(self, server):
        post(server, "/v1/runs", {"experiment": "validation"})
        status, listing = get(server, "/v1/jobs")
        assert status == 200
        assert listing["jobs"], "jobs listing should not be empty"
        assert all("result" not in job for job in listing["jobs"])


class TestErrors:
    def test_unknown_job_404(self, server):
        status, body = get(server, "/v1/jobs/doesnotexist")
        assert status == 404
        assert "unknown job" in body["error"]

    def test_unknown_path_404(self, server):
        status, body = get(server, "/v1/nope")
        assert status == 404

    def test_unknown_experiment_400(self, server):
        status, body = post(server, "/v1/runs", {"experiment": "nope"})
        assert status == 400
        assert "unknown experiment" in body["error"]

    def test_bad_override_400_with_suggestion(self, server):
        status, body = post(
            server, "/v1/runs",
            {"experiment": "validation", "overrides": {"sed": 1}},
        )
        assert status == 400
        assert "did you mean" in body["error"]

    def test_malformed_json_400(self, server):
        request = urllib.request.Request(
            server.url + "/v1/runs",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_empty_body_400(self, server):
        request = urllib.request.Request(
            server.url + "/v1/runs", data=b"",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400


class TestServeCli:
    def test_bad_cache_bytes_is_a_usage_error(self, capsys):
        from repro.cli import main

        assert main(["serve", "--cache-bytes", "lots"]) == 2
        assert "byte budget" in capsys.readouterr().err
