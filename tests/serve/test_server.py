"""End-to-end HTTP tests: real sockets, real validation experiment.

The server under test binds an ephemeral port on localhost and runs
with the in-process run executor (the spawn executor is exercised by
the CI ``serve-smoke`` job against a real ``repro serve`` process, and
by ``tools/serve_smoke.py`` locally).
"""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro import api
from repro.runner.cache import ResultCache
from repro.serve import inprocess_run_executor


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    cache = ResultCache(tmp_path_factory.mktemp("serve") / "cache")
    instance = api.serve(
        port=0,
        block=False,
        jobs=1,
        cache=cache,
        run_executor=inprocess_run_executor,
        quiet=True,
    )
    yield instance
    instance.stop()


def get(server, path):
    try:
        with urllib.request.urlopen(server.url + path, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def post(server, path, body):
    request = urllib.request.Request(
        server.url + path,
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def poll(server, job_id, timeout=60.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        status, job = get(server, f"/v1/jobs/{job_id}")
        assert status == 200
        if job["state"] in ("done", "failed"):
            return job
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} never finished")


class TestHealthz:
    def test_health_document(self, server):
        status, health = get(server, "/healthz")
        assert status == 200
        assert health["status"] == "ok"
        assert health["uptime_seconds"] >= 0
        assert health["heartbeat"] >= health["started_at"]
        assert set(health["queue"]["jobs"]) == {
            "pending", "running", "done", "failed",
        }
        assert "bytes" in health["cache"]
        assert "records" in health["cache"]

    def test_experiments_listing(self, server):
        status, listing = get(server, "/v1/experiments")
        assert status == 200
        ids = [entry["id"] for entry in listing["experiments"]]
        assert "validation" in ids and "em3d" in ids

    def test_specs_listing(self, server):
        status, listing = get(server, "/v1/specs")
        assert status == 200
        by_id = {entry["id"]: entry for entry in listing["specs"]}
        assert "em3d-latency" in by_id
        assert by_id["em3d-latency"]["kind"] == "sweep"
        assert by_id["em3d-latency"]["experiment"] == "em3d"
        assert "em3d-multicore" in by_id
        assert by_id["em3d-multicore"]["kind"] == "experiment"


class TestRunLifecycle:
    def test_cold_then_warm_roundtrip(self, server):
        body = {"experiment": "validation"}
        status, submitted = post(server, "/v1/runs", body)
        assert status in (200, 202)
        job = poll(server, submitted["job_id"])
        assert job["state"] == "done", job["error"]
        assert job["result"]["exp_id"] == "validation"
        assert all(ok for _n, ok, _d in job["result"]["checks"])

        # The stored record is exactly what `repro run` would serve
        # from its cache for the same configuration.
        record = api.record_for("validation", cache=server.cache)
        assert record.cached is True
        assert record.cache_key == job["result"]["cache_key"]
        assert record.summary == job["result"]["summary"]
        assert record.rendered == job["result"]["rendered"]

        # Identical resubmission: answered complete at submission time,
        # from the cache, with zero simulation, in under 250ms.
        started = time.perf_counter()
        status, warm = post(server, "/v1/runs", body)
        round_trip = time.perf_counter() - started
        assert status == 200
        assert warm["state"] == "done"
        assert warm["simulated"] is False
        assert round_trip < 0.25, f"warm round trip {round_trip:.3f}s"
        assert warm["result"]["summary"] == job["result"]["summary"]

    def test_submission_response_carries_job_envelope(self, server):
        status, job = post(
            server, "/v1/runs",
            {"experiment": "validation", "overrides": {"seed": 77}},
        )
        assert status in (200, 202)
        for field in ("job_id", "kind", "state", "params", "submitted_at"):
            assert field in job
        assert job["kind"] == "run"
        done = poll(server, job["job_id"])
        assert done["state"] == "done"

    def test_consistency_and_preset_overrides_accepted(self, server):
        """The memory-model and machine-table channels ride the same
        overrides surface as backend; a typo gets the config layer's
        did-you-mean as a 400."""
        status, job = post(
            server, "/v1/runs",
            {"experiment": "validation",
             "overrides": {"consistency": "tso", "preset": "multicore"}},
        )
        assert status in (200, 202)
        done = poll(server, job["job_id"])
        assert done["state"] == "done"
        assert done["params"]["overrides"]["consistency"] == "tso"
        status, body = post(
            server, "/v1/runs",
            {"experiment": "validation", "overrides": {"consistency": "tsso"}},
        )
        assert status == 400
        assert "did you mean 'tso'" in body["error"]

    def test_jobs_listing(self, server):
        post(server, "/v1/runs", {"experiment": "validation"})
        status, listing = get(server, "/v1/jobs")
        assert status == 200
        assert listing["jobs"], "jobs listing should not be empty"
        assert all("result" not in job for job in listing["jobs"])


class TestErrors:
    def test_unknown_job_404(self, server):
        status, body = get(server, "/v1/jobs/doesnotexist")
        assert status == 404
        assert "unknown job" in body["error"]

    def test_unknown_path_404(self, server):
        status, body = get(server, "/v1/nope")
        assert status == 404

    def test_unknown_experiment_400(self, server):
        status, body = post(server, "/v1/runs", {"experiment": "nope"})
        assert status == 400
        assert "unknown experiment" in body["error"]

    def test_bad_override_400_with_suggestion(self, server):
        status, body = post(
            server, "/v1/runs",
            {"experiment": "validation", "overrides": {"sed": 1}},
        )
        assert status == 400
        assert "did you mean" in body["error"]

    def test_malformed_json_400(self, server):
        request = urllib.request.Request(
            server.url + "/v1/runs",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_empty_body_400(self, server):
        request = urllib.request.Request(
            server.url + "/v1/runs", data=b"",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400


class TestServeCli:
    def test_bad_cache_bytes_is_a_usage_error(self, capsys):
        from repro.cli import main

        assert main(["serve", "--cache-bytes", "lots"]) == 2
        assert "byte budget" in capsys.readouterr().err


class TestKeepAliveDesync:
    """HTTP/1.1 keep-alive: every early-exit path must drain the
    request body, or the unread body is parsed as the next request on
    the same connection (request desync)."""

    def _request_bytes(self, path, body: bytes, host: str) -> bytes:
        return (
            f"POST {path} HTTP/1.1\r\n"
            f"Host: {host}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "\r\n"
        ).encode("ascii") + body

    @staticmethod
    def _parse_statuses(raw: bytes):
        """Frame HTTP/1.1 responses by Content-Length; a framing error
        here IS the desync the regression guards against."""
        statuses = []
        while raw:
            head, sep, rest = raw.partition(b"\r\n\r\n")
            assert sep, f"truncated response head: {raw[:80]!r}"
            status_line = head.split(b"\r\n", 1)[0]
            assert status_line.startswith(b"HTTP/1.1 "), status_line
            statuses.append(int(status_line.split(b" ")[1]))
            length = 0
            for line in head.split(b"\r\n")[1:]:
                name, _, value = line.partition(b":")
                if name.lower() == b"content-length":
                    length = int(value.strip())
            assert len(rest) >= length, "truncated response body"
            raw = rest[length:]
        return statuses

    def test_pipelined_posts_on_one_connection(self, server):
        """Valid, unknown-path, oversized, and malformed-JSON POSTs
        pipelined on one persistent connection all get the answer that
        belongs to them."""
        import socket

        from repro.serve.server import MAX_BODY_BYTES

        host, port = server.address
        requests = [
            # (path, body, expected_status)
            ("/v1/runs", json.dumps({"experiment": "validation"}).encode(),
             (200, 202)),
            ("/v1/nope", json.dumps({"experiment": "validation"}).encode(),
             (404,)),
            ("/v1/runs", b"x" * (MAX_BODY_BYTES + 1), (400,)),
            ("/v1/runs", b"{not json", (400,)),
            ("/v1/runs", json.dumps({"experiment": "validation"}).encode(),
             (200, 202)),
        ]
        payload = b"".join(
            self._request_bytes(path, body, host)
            for path, body, _ in requests
        )
        with socket.create_connection((host, port), timeout=30) as sock:
            sock.sendall(payload)
            sock.shutdown(socket.SHUT_WR)
            raw = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                raw += chunk

        statuses = self._parse_statuses(raw)
        assert len(statuses) == len(requests), (
            f"expected {len(requests)} responses, got {len(statuses)}: "
            f"{statuses} (desync?)"
        )
        for (path, _body, expected), status in zip(requests, statuses):
            assert status in expected, (
                f"{path}: expected {expected}, got {status}"
            )

    def test_sequential_keepalive_after_errors(self, server):
        """http.client on one persistent connection: the socket stays
        usable across 404/400 answers."""
        import http.client

        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            cases = [
                ("POST", "/v1/nope", b'{"experiment": "validation"}', 404),
                ("POST", "/v1/runs", b"{broken", 400),
                ("POST", "/v1/runs", b'{"experiment": "validation"}', None),
                ("GET", "/healthz", None, 200),
            ]
            sock_ids = []
            for method, path, body, expected in cases:
                headers = {"Content-Type": "application/json"} if body else {}
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                payload = json.loads(response.read())
                if expected is not None:
                    assert response.status == expected, (path, payload)
                sock_ids.append(id(conn.sock))
            assert len(set(sock_ids)) == 1, "connection was not reused"
        finally:
            conn.close()

    def test_get_with_body_stays_in_sync(self, server):
        import http.client

        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            conn.request("GET", "/healthz", body=b'{"stray": "body"}',
                         headers={"Content-Type": "application/json"})
            first = conn.getresponse()
            assert first.status == 200
            json.loads(first.read())
            conn.request("GET", "/v1/experiments")
            second = conn.getresponse()
            assert second.status == 200
            assert "experiments" in json.loads(second.read())
        finally:
            conn.close()


class TestLongPoll:
    def test_wait_returns_immediately_for_done_job(self, server):
        status, job = post(server, "/v1/runs", {"experiment": "validation"})
        job = poll(server, job["job_id"])
        started = time.perf_counter()
        status, again = get(server, f"/v1/jobs/{job['job_id']}?wait=10")
        elapsed = time.perf_counter() - started
        assert status == 200
        assert again["state"] == "done"
        assert elapsed < 2.0, "long-poll on a finished job must not block"

    def test_wait_blocks_until_completion(self, server):
        body = {"experiment": "validation", "overrides": {"seed": 4242}}
        status, submitted = post(server, "/v1/runs", body)
        assert status in (200, 202)
        status, job = get(
            server, f"/v1/jobs/{submitted['job_id']}?wait=30"
        )
        assert status == 200
        assert job["state"] in ("done", "failed")
        assert job["state"] == "done", job["error"]

    def test_bad_wait_is_a_400(self, server):
        status, job = post(server, "/v1/runs", {"experiment": "validation"})
        status, body = get(server, f"/v1/jobs/{job['job_id']}?wait=soon")
        assert status == 400
        assert "wait=" in body["error"]


class TestStatusPage:
    def test_status_page_renders(self, server):
        post(server, "/v1/runs", {"experiment": "validation"})
        import urllib.request

        with urllib.request.urlopen(server.url + "/status", timeout=10) as r:
            assert r.status == 200
            assert "text/html" in r.headers["Content-Type"]
            page = r.read().decode("utf-8")
        assert "repro serve" in page
        assert "cache records" in page
        assert "validation" in page or "job" in page

    def test_health_reports_admission_and_retention(self, server):
        status, health = get(server, "/healthz")
        assert status == 200
        assert "max_pending" in health["admission"]
        assert "retention" in health["queue"]
        assert health["queue"]["retention"]["max_terminal"] is not None
        assert health["cache"]["store"] == "local"
        assert health["replica"]["pid"] > 0
