"""Cache size accounting and byte-budget eviction policy."""

import json
import os
import time

import pytest

from repro.runner.api import resolve_config
from repro.runner.cache import ResultCache, cache_key
from repro.runner.record import RunRecord
from repro.serve.eviction import enforce_budget, parse_bytes


def store_record(cache, seed, payload_bytes=0, mtime=None, stale=False):
    """One record with a controllable size, age, and salt freshness."""
    config = resolve_config("validation", {"seed": seed})
    record = RunRecord(
        exp_id="validation",
        title="test",
        paper_tables="-",
        cache_key=cache_key(config),
        config=config.to_jsonable(),
        elapsed_seconds=0.01,
        checks=[["shape", True, "ok"]],
        rendered="#" * payload_bytes,
        summary={"kind": "scalars", "data": {}},
    )
    path = cache.store(record)
    if stale:
        # Rewrite the stored key: it can no longer match a key recomputed
        # from the config under the current salt — exactly what a
        # CODE_SALT bump leaves behind.
        data = json.loads(path.read_text())
        data["cache_key"] = "0" * 64
        path.write_text(json.dumps(data))
    if mtime is not None:
        os.utime(path, (mtime, mtime))
    return config, path


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestAccounting:
    def test_index_reports_bytes_mtime_staleness(self, cache):
        now = time.time()
        _, fresh_path = store_record(cache, seed=1, mtime=now - 50)
        _, stale_path = store_record(cache, seed=2, mtime=now - 10, stale=True)
        entries = {entry.path: entry for entry in cache.index()}
        assert entries[fresh_path].stale is False
        assert entries[stale_path].stale is True
        assert entries[fresh_path].bytes == fresh_path.stat().st_size
        assert [e.path for e in cache.index()] == [fresh_path, stale_path]

    def test_stats_totals(self, cache):
        store_record(cache, seed=1)
        store_record(cache, seed=2, stale=True)
        stats = cache.stats()
        assert stats["records"] == 2
        assert stats["stale_records"] == 1
        assert stats["bytes"] == cache.total_bytes() > 0

    def test_corrupt_file_counts_as_stale(self, cache):
        cache.directory.mkdir(parents=True)
        bad = cache.directory / "garbage-0000.json"
        bad.write_text("{not json")
        entries = cache.index()
        assert len(entries) == 1 and entries[0].stale is True

    def test_load_bumps_mtime(self, cache):
        config, path = store_record(cache, seed=1, mtime=time.time() - 500)
        before = path.stat().st_mtime
        assert cache.load(config) is not None
        assert path.stat().st_mtime > before


class TestEnforceBudget:
    def test_under_budget_is_a_noop(self, cache):
        store_record(cache, seed=1)
        report = enforce_budget(cache, budget_bytes=10**9)
        assert report.evicted == []
        assert report.bytes_before == report.bytes_after

    def test_evicts_oldest_mtime_first(self, cache):
        now = time.time()
        _, old = store_record(cache, seed=1, payload_bytes=4000, mtime=now - 300)
        _, mid = store_record(cache, seed=2, payload_bytes=4000, mtime=now - 200)
        _, new = store_record(cache, seed=3, payload_bytes=4000, mtime=now - 100)
        budget = mid.stat().st_size + new.stat().st_size
        report = enforce_budget(cache, budget_bytes=budget)
        assert report.evicted == [old.name]
        assert not old.exists() and mid.exists() and new.exists()
        assert cache.total_bytes() <= budget

    def test_stale_salt_records_evict_before_fresh_older_ones(self, cache):
        now = time.time()
        # The stale record is the *youngest* — eviction must still take
        # it before any fresh record.
        _, fresh_old = store_record(
            cache, seed=1, payload_bytes=4000, mtime=now - 300
        )
        _, fresh_new = store_record(
            cache, seed=2, payload_bytes=4000, mtime=now - 200
        )
        _, stale_new = store_record(
            cache, seed=3, payload_bytes=4000, mtime=now - 10, stale=True
        )
        budget = fresh_old.stat().st_size + fresh_new.stat().st_size
        report = enforce_budget(cache, budget_bytes=budget)
        assert report.evicted == [stale_new.name]
        assert report.stale_evicted == 1
        assert fresh_old.exists() and fresh_new.exists()

    def test_hot_records_survive(self, cache):
        now = time.time()
        config_a, path_a = store_record(
            cache, seed=1, payload_bytes=4000, mtime=now - 300
        )
        _, path_b = store_record(
            cache, seed=2, payload_bytes=4000, mtime=now - 200
        )
        _, path_c = store_record(
            cache, seed=3, payload_bytes=4000, mtime=now - 100
        )
        # A is oldest on disk but hot: a cache hit bumps its mtime,
        # so eviction takes B (now the least recently used) instead.
        assert cache.load(config_a) is not None
        budget = path_a.stat().st_size + path_c.stat().st_size
        report = enforce_budget(cache, budget_bytes=budget)
        assert path_a.exists(), "hot record must survive eviction"
        assert not path_b.exists()
        assert path_b.name in report.evicted

    def test_evicts_down_to_budget_across_many(self, cache):
        now = time.time()
        paths = [
            store_record(cache, seed=s, payload_bytes=2000, mtime=now - 100 * s)[1]
            for s in range(1, 7)
        ]
        one = paths[0].stat().st_size
        report = enforce_budget(cache, budget_bytes=2 * one)
        assert cache.total_bytes() <= 2 * one
        survivors = [p for p in paths if p.exists()]
        # The two youngest (smallest age multiplier) survive.
        assert survivors == [paths[0], paths[1]]
        assert report.evicted_count == 4


class TestParseBytes:
    @pytest.mark.parametrize(
        "text,expected",
        [
            (None, None),
            ("", None),
            ("1024", 1024),
            ("64K", 64 * 1024),
            ("64k", 64 * 1024),
            ("32M", 32 * 1024**2),
            ("32MB", 32 * 1024**2),
            ("1.5G", int(1.5 * 1024**3)),
        ],
    )
    def test_valid(self, text, expected):
        assert parse_bytes(text) == expected

    @pytest.mark.parametrize("text", ["lots", "-5", "64T", "M"])
    def test_invalid(self, text):
        with pytest.raises(ValueError, match="byte budget"):
            parse_bytes(text)


class TestCacheLsCli:
    def test_ls_reports_per_record_bytes_and_total(self, cache, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(cache.directory))
        store_record(cache, seed=1, payload_bytes=1000)
        store_record(cache, seed=2, stale=True)
        from repro.cli import main

        assert main(["cache", "ls"]) == 0
        out = capsys.readouterr().out
        total = cache.total_bytes()
        assert f"{total} bytes total" in out
        assert "1 stale-salt" in out
        assert "salt:fresh" in out and "salt:stale" in out
        # Every record line carries its own byte size.
        sizes = [entry.bytes for entry in cache.index()]
        for size in sizes:
            assert f"{size:8d}B" in out
