"""Structural validation of the serve request schemas."""

import pytest

from repro.serve.schemas import (
    SchemaError,
    parse_run_request,
    parse_sweep_request,
)


class TestParseRunRequest:
    def test_minimal(self):
        req = parse_run_request({"experiment": "validation"})
        assert req.exp_id == "validation"
        assert req.overrides == {}
        assert req.force is False

    def test_full(self):
        req = parse_run_request(
            {
                "experiment": "gauss",
                "overrides": {"procs": 4, "app": {"n": 40}},
                "force": True,
            }
        )
        assert req.overrides == {"procs": 4, "app": {"n": 40}}
        assert req.force is True

    def test_non_object_body(self):
        with pytest.raises(SchemaError, match="JSON object"):
            parse_run_request(["validation"])

    def test_missing_experiment(self):
        with pytest.raises(SchemaError, match="'experiment'"):
            parse_run_request({"overrides": {}})

    def test_unknown_key_has_suggestion(self):
        with pytest.raises(SchemaError, match="did you mean 'experiment'"):
            parse_run_request({"expriment": "validation"})

    def test_overrides_must_be_mapping(self):
        with pytest.raises(SchemaError, match="'overrides'"):
            parse_run_request({"experiment": "mse", "overrides": [1, 2]})

    def test_force_must_be_boolean(self):
        with pytest.raises(SchemaError, match="boolean"):
            parse_run_request({"experiment": "mse", "force": "yes"})


class TestParseSweepRequest:
    def test_minimal(self):
        req = parse_sweep_request({"spec": "em3d-latency"})
        assert req.spec == "em3d-latency"
        assert req.axes == {}
        assert req.jobs is None

    def test_axes_and_jobs(self):
        req = parse_sweep_request(
            {
                "spec": "em3d-latency",
                "axes": {"net_latency": [0, 100]},
                "jobs": 3,
            }
        )
        assert req.axes == {"net_latency": [0, 100]}
        assert req.jobs == 3

    def test_missing_spec(self):
        with pytest.raises(SchemaError, match="'spec'"):
            parse_sweep_request({})

    def test_empty_axis_rejected(self):
        with pytest.raises(SchemaError, match="non-empty list"):
            parse_sweep_request(
                {"spec": "em3d-latency", "axes": {"net_latency": []}}
            )

    def test_scalar_axis_rejected(self):
        with pytest.raises(SchemaError, match="non-empty list"):
            parse_sweep_request(
                {"spec": "em3d-latency", "axes": {"net_latency": 100}}
            )

    def test_bad_jobs(self):
        with pytest.raises(SchemaError, match="positive integer"):
            parse_sweep_request({"spec": "em3d-latency", "jobs": 0})

    def test_unknown_key(self):
        with pytest.raises(SchemaError, match="unknown sweep request field"):
            parse_sweep_request({"spec": "em3d-latency", "axis": {}})
