"""Property-based tests for the TLB and address arithmetic."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.address import AddressRange, align_up, block_span
from repro.arch.tlb import Tlb


@given(
    st.integers(min_value=0, max_value=1 << 30),
    st.integers(min_value=1, max_value=4096),
    st.sampled_from([16, 32, 64, 128]),
)
@settings(max_examples=200, deadline=None)
def test_block_span_covers_exactly_the_range(start, length, block):
    blocks = list(block_span(start, length, block))
    # Every byte of the range is covered by some block.
    assert blocks[0] <= start
    assert blocks[-1] + block >= start + length
    # Blocks are aligned, consecutive, and non-redundant.
    for addr in blocks:
        assert addr % block == 0
    for a, b in zip(blocks, blocks[1:]):
        assert b == a + block
    # Tight: first and last blocks intersect the range.
    assert blocks[0] + block > start
    assert blocks[-1] < start + length


@given(st.integers(min_value=0, max_value=1 << 20),
       st.sampled_from([1, 8, 32, 4096]))
def test_align_up_properties(value, alignment):
    aligned = align_up(value, alignment)
    assert aligned % alignment == 0
    assert 0 <= aligned - value < alignment


@given(st.integers(min_value=0, max_value=1 << 20),
       st.integers(min_value=0, max_value=1 << 12))
def test_address_range_end(start, length):
    assert AddressRange(start, length).end == start + length


@given(
    st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=300),
    st.integers(min_value=1, max_value=64),
)
@settings(max_examples=100, deadline=None)
def test_tlb_never_exceeds_capacity(pages, entries):
    tlb = Tlb(entries=entries, page_bytes=4096)
    for page in pages:
        tlb.access(page * 4096)
    resident = sum(tlb.contains(p * 4096) for p in set(pages))
    assert resident <= entries


@given(st.lists(st.integers(min_value=0, max_value=31), min_size=1, max_size=200))
@settings(max_examples=100, deadline=None)
def test_tlb_hits_plus_misses_equals_accesses(pages):
    tlb = Tlb(entries=8, page_bytes=4096)
    for page in pages:
        tlb.access(page * 4096)
    assert tlb.hits + tlb.misses == len(pages)


@given(st.lists(st.integers(min_value=0, max_value=31), min_size=1, max_size=200))
@settings(max_examples=100, deadline=None)
def test_tlb_small_working_set_always_fits(pages):
    """With <= entries distinct pages, each page misses exactly once."""
    tlb = Tlb(entries=64, page_bytes=4096)
    for page in pages:
        tlb.access(page * 4096)
    assert tlb.misses == len(set(pages))
