"""Property-based tests for MCS locks, reductions, and CMMD transfers."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.params import MachineParams
from repro.memory.dataspace import HomePolicy
from repro.mp.machine import MpMachine
from repro.sm.machine import SmMachine

PROCS = 4


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=3),  # acquisitions per proc
            st.integers(min_value=0, max_value=300),  # critical-section work
            st.integers(min_value=0, max_value=300),  # think time
        ),
        min_size=PROCS,
        max_size=PROCS,
    )
)
@settings(max_examples=25, deadline=None)
def test_mcs_lock_counter_never_loses_updates(plans):
    machine = SmMachine(MachineParams.paper(num_processors=PROCS), seed=13)
    lock = machine.make_lock("l")
    counter = machine.contexts[0].gmalloc("counter", 4, policy=HomePolicy.LOCAL)

    def program(ctx):
        rounds, work, think = plans[ctx.pid]
        for _ in range(rounds):
            yield from ctx.compute(think)
            yield from lock.acquire(ctx)
            values = yield from ctx.read(counter, 0, 1)
            yield from ctx.compute(work)
            yield from ctx.write(counter, 0, values=[float(values[0]) + 1.0])
            yield from lock.release(ctx)

    machine.run(program)
    expected = sum(rounds for rounds, _w, _t in plans)
    assert counter.np[0] == float(expected)


@given(
    st.lists(st.floats(min_value=-100, max_value=100,
                       allow_nan=False, allow_infinity=False),
             min_size=PROCS, max_size=PROCS),
    st.sampled_from(["max", "sum"]),
)
@settings(max_examples=25, deadline=None)
def test_reduction_computes_correct_result(values, op_name):
    machine = SmMachine(MachineParams.paper(num_processors=PROCS), seed=13)
    reduction = machine.make_reduction("r")
    got = {}

    def op(a, b):
        if op_name == "max":
            return max(a, b)
        return (a[0] + b[0], 0.0)

    def program(ctx):
        result = yield from reduction.allreduce(ctx, values[ctx.pid], op)
        got[ctx.pid] = result[0]

    machine.run(program)
    expected = max(values) if op_name == "max" else sum(values)
    for pid in range(PROCS):
        assert abs(got[pid] - expected) < 1e-9


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=40),  # transfer elements
            st.integers(min_value=0, max_value=8),  # window offset
        ),
        min_size=1,
        max_size=5,
    )
)
@settings(max_examples=25, deadline=None)
def test_cmmd_transfers_deliver_exact_bytes(transfers):
    machine = MpMachine(MachineParams.paper(num_processors=2), seed=13)
    window = 64
    received = []

    def program(ctx):
        buffer = ctx.alloc("buf", window, fill=-1.0)
        if ctx.pid == 1:
            channel = yield from ctx.cmmd.offer_channel(0, buffer, key="t")
            for size, offset in transfers:
                yield from ctx.cmmd.wait_channel(channel, size * 8)
                received.append(buffer.np[offset:offset + size].copy())
        else:
            channel = yield from ctx.cmmd.accept_channel(1, key="t")
            for i, (size, offset) in enumerate(transfers):
                payload = np.full(size, float(i))
                yield from ctx.cmmd.write_channel(channel, payload, el_offset=offset)

    machine.run(program)
    assert len(received) == len(transfers)
    for i, ((size, _offset), data) in enumerate(zip(transfers, received)):
        assert data.size == size
        assert (data == float(i)).all()


@given(st.integers(min_value=2, max_value=8),
       st.integers(min_value=0, max_value=7))
@settings(max_examples=30, deadline=None)
def test_value_broadcast_from_any_root(nprocs, root_choice):
    root = root_choice % nprocs
    machine = MpMachine(MachineParams.paper(num_processors=nprocs), seed=13)
    got = {}

    def program(ctx):
        value = 3.25 if ctx.pid == root else None
        result = yield from ctx.coll.broadcast(value, root=root)
        got[ctx.pid] = result

    machine.run(program)
    assert set(got.values()) == {3.25}
    assert len(got) == nprocs
