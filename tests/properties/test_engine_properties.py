"""Property-based tests for the discrete-event engine and processes."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine
from repro.sim.process import Delay, Process


@given(st.lists(st.integers(min_value=0, max_value=1000), max_size=100))
@settings(max_examples=100, deadline=None)
def test_events_observed_in_nondecreasing_time_order(delays):
    engine = Engine()
    observed = []
    for delay in delays:
        engine.schedule(delay, lambda: observed.append(engine.now))
    engine.run()
    assert observed == sorted(observed)
    assert sorted(observed) == sorted(delays)


@given(st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=50))
@settings(max_examples=100, deadline=None)
def test_process_time_is_sum_of_delays(delays):
    engine = Engine()

    def body():
        for delay in delays:
            yield Delay(delay)

    proc = Process(engine, body())
    engine.run()
    assert proc.finished
    assert engine.now == sum(delays)


@given(
    st.lists(
        st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=10),
        min_size=1,
        max_size=8,
    )
)
@settings(max_examples=60, deadline=None)
def test_concurrent_processes_all_finish_at_max(process_delays):
    engine = Engine()

    def body(delays):
        for delay in delays:
            yield Delay(delay)
        return sum(delays)

    procs = [Process(engine, body(d)) for d in process_delays]
    engine.run()
    assert all(p.finished for p in procs)
    assert engine.now == max(sum(d) for d in process_delays)
    for proc, delays in zip(procs, process_delays):
        assert proc.result() == sum(delays)


@given(st.lists(st.integers(min_value=0, max_value=100), max_size=60),
       st.integers(min_value=0, max_value=100))
@settings(max_examples=60, deadline=None)
def test_run_until_is_resumable_and_equivalent(delays, split):
    one_shot = Engine()
    observed_one = []
    for delay in delays:
        one_shot.schedule(delay, lambda d=delay: observed_one.append(d))
    one_shot.run()

    two_phase = Engine()
    observed_two = []
    for delay in delays:
        two_phase.schedule(delay, lambda d=delay: observed_two.append(d))
    two_phase.run(until=split)
    two_phase.run()
    assert observed_one == observed_two
