"""Property-based tests for the cache model."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.cache import Cache, LineState

BLOCK = 32


def aligned_addresses(max_blocks=512):
    return st.integers(min_value=0, max_value=max_blocks - 1).map(
        lambda i: i * BLOCK
    )


@st.composite
def cache_and_ops(draw):
    sets = draw(st.sampled_from([1, 2, 4, 8]))
    assoc = draw(st.sampled_from([1, 2, 4]))
    cache = Cache(sets * assoc * BLOCK, assoc, BLOCK,
                  np.random.default_rng(draw(st.integers(0, 2**16))))
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["insert_s", "insert_x", "invalidate", "lookup"]),
                aligned_addresses(),
            ),
            max_size=200,
        )
    )
    return cache, ops


def apply(cache, op, addr):
    if op == "insert_s":
        cache.insert(addr, LineState.SHARED)
    elif op == "insert_x":
        cache.insert(addr, LineState.EXCLUSIVE)
    elif op == "invalidate":
        cache.invalidate(addr)
    else:
        cache.lookup(addr)


@given(cache_and_ops())
@settings(max_examples=60, deadline=None)
def test_occupancy_never_exceeds_capacity(args):
    cache, ops = args
    capacity = cache.num_sets * cache.assoc
    for op, addr in ops:
        apply(cache, op, addr)
        assert cache.resident_blocks() <= capacity


@given(cache_and_ops())
@settings(max_examples=60, deadline=None)
def test_set_occupancy_never_exceeds_associativity(args):
    cache, ops = args
    for op, addr in ops:
        apply(cache, op, addr)
    for line_set in cache._sets:
        assert len(line_set) <= cache.assoc


@given(cache_and_ops())
@settings(max_examples=60, deadline=None)
def test_insert_then_peek_round_trips(args):
    cache, ops = args
    for op, addr in ops:
        apply(cache, op, addr)
        if op == "insert_s":
            assert cache.peek(addr) is LineState.SHARED
        elif op == "insert_x":
            assert cache.peek(addr) is LineState.EXCLUSIVE
        elif op == "invalidate":
            assert cache.peek(addr) is LineState.INVALID


@given(cache_and_ops())
@settings(max_examples=60, deadline=None)
def test_hits_plus_misses_equals_lookups(args):
    cache, ops = args
    lookups = 0
    for op, addr in ops:
        apply(cache, op, addr)
        if op == "lookup":
            lookups += 1
    assert cache.hits + cache.misses == lookups


@given(cache_and_ops())
@settings(max_examples=40, deadline=None)
def test_eviction_callback_matches_return_value(args):
    cache, ops = args
    callback_evictions = []
    cache.on_evict = lambda addr, state: callback_evictions.append(addr)
    returned_evictions = []
    for op, addr in ops:
        if op in ("insert_s", "insert_x"):
            state = LineState.SHARED if op == "insert_s" else LineState.EXCLUSIVE
            victim = cache.insert(addr, state)
            if victim is not None:
                returned_evictions.append(victim[0])
        else:
            apply(cache, op, addr)
    assert callback_evictions == returned_evictions
