"""Property-based tests of traffic accounting invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.params import MachineParams
from repro.mp.machine import MpMachine
from repro.sm.machine import SmMachine
from repro.memory.dataspace import HomePolicy


@given(
    st.lists(st.integers(min_value=1, max_value=100), min_size=1, max_size=6)
)
@settings(max_examples=25, deadline=None)
def test_mp_bytes_conserve_packet_size(sizes):
    """For any transfer mix: data + control == 20 bytes x packets sent.

    Every packet on the wire is exactly 20 bytes; the data/control
    split partitions them, never invents or loses bytes.
    """
    machine = MpMachine(MachineParams.paper(num_processors=2), seed=17)

    def program(ctx):
        buffer = ctx.alloc("buf", max(sizes))
        if ctx.pid == 1:
            channel = yield from ctx.cmmd.offer_channel(0, buffer, key="t")
            for size in sizes:
                yield from ctx.cmmd.wait_channel(channel, size * 8)
        else:
            channel = yield from ctx.cmmd.accept_channel(1, key="t")
            for i, size in enumerate(sizes):
                yield from ctx.cmmd.write_channel(
                    channel, np.full(size, float(i))
                )

    result = machine.run(program)
    board = result.board
    packets = board.total_count("messages_sent")
    data = board.total_count("data_bytes")
    control = board.total_count("control_bytes")
    assert data + control == 20 * packets


@given(
    st.lists(
        st.tuples(st.sampled_from(["read", "write"]),
                  st.integers(min_value=0, max_value=15)),
        max_size=30,
    )
)
@settings(max_examples=25, deadline=None)
def test_sm_data_bytes_are_whole_blocks(ops):
    """Shared-memory data bytes arrive only as whole 32-byte blocks."""
    machine = SmMachine(MachineParams.paper(num_processors=2), seed=17)

    def program(ctx):
        if ctx.pid == 0:
            ctx.gmalloc("g", 16, policy=HomePolicy.ROUND_ROBIN)
        yield from ctx.barrier()
        region = ctx.machine.regions[0]
        if ctx.pid == 1:
            for op, index in ops:
                if op == "read":
                    yield from ctx.read(region, index, index + 1)
                else:
                    yield from ctx.write(region, index, values=[1.0])

    result = machine.run(program)
    for proc in result.board.procs:
        assert proc.counts.get("data_bytes", 0) % 32 == 0


@given(
    st.lists(
        st.tuples(st.sampled_from(["read", "write"]),
                  st.integers(min_value=0, max_value=15)),
        max_size=30,
    )
)
@settings(max_examples=25, deadline=None)
def test_sm_control_bytes_are_message_multiples(ops):
    """Control bytes decompose into 8-byte headers and 40-byte messages."""
    machine = SmMachine(MachineParams.paper(num_processors=2), seed=17)

    def program(ctx):
        if ctx.pid == 0:
            ctx.gmalloc("g", 16, policy=HomePolicy.ROUND_ROBIN)
        yield from ctx.barrier()
        region = ctx.machine.regions[0]
        for op, index in ops:
            if op == "read":
                yield from ctx.read(region, index, index + 1)
            else:
                yield from ctx.write(region, index, values=[1.0])
        yield from ctx.barrier()

    result = machine.run(program)
    for proc in result.board.procs:
        control = proc.counts.get("control_bytes", 0)
        assert control % 8 == 0  # 40- and 8-byte pieces only
