"""Property-based tests of Dir_nNB coherence invariants.

Random programs of reads/writes from random processors must always
leave the machine in a protocol-consistent state: a block is either
dirty in exactly one cache (and the directory knows the owner) or
read-only in any number of caches, never both.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.cache import LineState
from repro.arch.params import MachineParams
from repro.memory.dataspace import HomePolicy
from repro.sm.machine import SmMachine
from repro.sm.protocol import DirState

PROCS = 3
ELEMS = 16  # 4 blocks


@st.composite
def access_scripts(draw):
    """Per-processor scripts of (op, element-index) steps."""
    return [
        draw(
            st.lists(
                st.tuples(
                    st.sampled_from(["read", "write"]),
                    st.integers(min_value=0, max_value=ELEMS - 1),
                ),
                max_size=25,
            )
        )
        for _ in range(PROCS)
    ]


def run_script(scripts, policy, cache_bytes=None, seed=0):
    params = MachineParams.paper(num_processors=PROCS)
    if cache_bytes:
        params = params.with_cache_bytes(cache_bytes)
    machine = SmMachine(params, seed=seed)

    def program(ctx):
        if ctx.pid == 0:
            ctx.gmalloc("g", ELEMS, policy=policy)
        yield from ctx.barrier()
        region = ctx.machine.regions[0]
        for op, index in scripts[ctx.pid]:
            if op == "read":
                yield from ctx.read(region, index, index + 1)
            else:
                yield from ctx.write(region, index, values=[float(index)])

    machine.run(program)
    return machine


def assert_coherent(machine):
    region = machine.regions[0]
    block0 = region.base
    for offset in range(0, region.nbytes, 32):
        block = block0 + offset
        home = region.home_of_block(block)
        entry = machine.directories[home].entries.get(block)
        holders = {
            pid: machine.nodes[pid].cache.peek(block)
            for pid in range(PROCS)
        }
        dirty = [p for p, s in holders.items() if s is LineState.EXCLUSIVE]
        shared = [p for p, s in holders.items() if s is LineState.SHARED]
        # Single-writer invariant.
        assert len(dirty) <= 1, f"two dirty copies of {block:#x}: {dirty}"
        assert not (dirty and shared), (
            f"dirty and shared copies coexist for {block:#x}"
        )
        if entry is None:
            assert not dirty and not shared
            continue
        assert not entry.busy, f"transaction left busy at {block:#x}"
        if dirty:
            assert entry.state is DirState.EXCLUSIVE
            assert entry.owner == dirty[0]
        if entry.state is DirState.EXCLUSIVE:
            # The owner either still holds the line or silently... no:
            # dirty evictions synchronously downgrade, so the owner must
            # hold it.
            assert holders[entry.owner] is LineState.EXCLUSIVE
        if entry.state is DirState.SHARED:
            # Full-map may conservatively list stale sharers (silent
            # clean evictions), but every true copy must be listed.
            for pid in shared:
                assert pid in entry.sharers


@given(access_scripts(), st.sampled_from([HomePolicy.ROUND_ROBIN, HomePolicy.LOCAL]))
@settings(max_examples=40, deadline=None)
def test_protocol_state_is_coherent(scripts, policy):
    machine = run_script(scripts, policy)
    assert_coherent(machine)


@given(access_scripts())
@settings(max_examples=25, deadline=None)
def test_protocol_coherent_under_capacity_pressure(scripts):
    """A tiny cache forces evictions and writebacks mid-protocol."""
    machine = run_script(scripts, HomePolicy.ROUND_ROBIN, cache_bytes=128)
    assert_coherent(machine)


@given(access_scripts())
@settings(max_examples=25, deadline=None)
def test_last_writer_value_is_visible(scripts):
    machine = run_script(scripts, HomePolicy.ROUND_ROBIN)
    region = machine.regions[0]
    # Every element that anyone wrote holds its (deterministic) value.
    written = {i for script in scripts for op, i in script if op == "write"}
    for index in written:
        assert region.np[index] == float(index)


@given(access_scripts())
@settings(max_examples=15, deadline=None)
def test_runs_are_deterministic(scripts):
    m1 = run_script(scripts, HomePolicy.ROUND_ROBIN, seed=42)
    m2 = run_script(scripts, HomePolicy.ROUND_ROBIN, seed=42)
    for pid in range(PROCS):
        s1 = m1.nodes[pid].stats
        s2 = m2.nodes[pid].stats
        assert dict(s1.cycles) == dict(s2.cycles)
        assert dict(s1.counts) == dict(s2.counts)
