"""Property-based tests for collective trees and data-space layout."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.dataspace import DataSpace, HomePolicy
from repro.mp.collectives import binary_children, flat_children, lopsided_children


def spans_everyone(children, nprocs):
    seen = {0}
    frontier = [0]
    while frontier:
        node = frontier.pop()
        for child in children.get(node, []):
            if child in seen:
                return False
            seen.add(child)
            frontier.append(child)
    return seen == set(range(nprocs))


@given(st.integers(min_value=1, max_value=200))
def test_flat_tree_always_spans(nprocs):
    assert spans_everyone(flat_children(nprocs), nprocs)


@given(st.integers(min_value=1, max_value=200))
def test_binary_tree_always_spans(nprocs):
    assert spans_everyone(binary_children(nprocs), nprocs)


@given(
    st.integers(min_value=1, max_value=200),
    st.integers(min_value=1, max_value=100),
    st.integers(min_value=1, max_value=500),
)
@settings(max_examples=150, deadline=None)
def test_lopsided_tree_always_spans(nprocs, gap, latency):
    assert spans_everyone(lopsided_children(nprocs, gap, latency), nprocs)


@given(st.integers(min_value=2, max_value=128))
@settings(max_examples=80, deadline=None)
def test_lopsided_degenerates_sensibly(nprocs):
    """With latency == gap, every informed node keeps sending: the tree
    still spans and the root sends at least as many as anyone."""
    children = lopsided_children(nprocs, 10, 10)
    assert spans_everyone(children, nprocs)
    root_kids = len(children.get(0, []))
    assert root_kids == max(len(c) for c in children.values())


@given(
    st.integers(min_value=1, max_value=16),
    st.lists(st.integers(min_value=1, max_value=64), min_size=1, max_size=12),
)
@settings(max_examples=80, deadline=None)
def test_regions_never_overlap(nodes, sizes):
    space = DataSpace(num_nodes=nodes, block_bytes=32)
    regions = []
    for i, size in enumerate(sizes):
        owner = i % nodes
        if i % 2:
            regions.append(space.alloc_private(f"p{i}", owner, size))
        else:
            regions.append(
                space.alloc_shared(f"s{i}", owner, size, policy=HomePolicy.ROUND_ROBIN)
            )
    intervals = sorted((r.base, r.end) for r in regions)
    for (lo1, hi1), (lo2, _hi2) in zip(intervals, intervals[1:]):
        assert hi1 <= lo2


@given(
    st.integers(min_value=1, max_value=16),
    st.integers(min_value=1, max_value=256),
)
@settings(max_examples=100, deadline=None)
def test_round_robin_homes_are_balanced(nodes, elems):
    space = DataSpace(num_nodes=nodes, block_bytes=32)
    region = space.alloc_shared("g", 0, elems, dtype=np.float64)
    homes = [
        region.home_of_block(region.base + i * 32)
        for i in range((region.nbytes + 31) // 32)
    ]
    counts = {h: homes.count(h) for h in set(homes)}
    assert max(counts.values()) - min(counts.values()) <= 1
    assert all(0 <= h < nodes for h in homes)
