"""Integration tests: pair study and paper-style rendering."""

import pytest

from repro.apps.gauss.common import GaussConfig
from repro.apps.gauss.mp import run_gauss_mp
from repro.apps.gauss.sm import run_gauss_sm
from repro.arch.params import MachineParams
from repro.core.study import PairResult
from repro.core.tables import (
    render_mp_breakdown,
    render_mp_counts,
    render_pair,
    render_sm_breakdown,
    render_sm_counts,
)
from repro.mp.machine import MpMachine
from repro.sm.machine import SmMachine


@pytest.fixture(scope="module")
def gauss_pair():
    config = GaussConfig.small(n=24)
    mp_result, _x = run_gauss_mp(
        MpMachine(MachineParams.paper(num_processors=4), seed=1), config
    )
    sm_result, _x2 = run_gauss_sm(
        SmMachine(MachineParams.paper(num_processors=4), seed=1), config
    )
    return PairResult(
        name="Gauss", mp_result=mp_result, sm_result=sm_result,
        phases=["init", "main"],
    )


def test_relative_ratios_are_reciprocal(gauss_pair):
    assert gauss_pair.mp_relative_to_sm == pytest.approx(
        1.0 / gauss_pair.sm_relative_to_mp
    )


def test_totals_positive(gauss_pair):
    assert gauss_pair.mp_total > 0
    assert gauss_pair.sm_total > 0


def test_phase_breakdowns_sum_to_whole(gauss_pair):
    whole = gauss_pair.mp_breakdown().total
    init = gauss_pair.mp_breakdown(phase="init").total
    main = gauss_pair.mp_breakdown(phase="main").total
    assert init + main == pytest.approx(whole, rel=1e-9)


def test_render_mp_breakdown(gauss_pair):
    text = render_mp_breakdown(gauss_pair)
    assert "Gauss Message Passing (Gauss-MP)" in text
    assert "Computation" in text
    assert "Relative to Shared Memory" in text


def test_render_sm_breakdown(gauss_pair):
    text = render_sm_breakdown(gauss_pair)
    assert "Gauss Shared Memory (Gauss-SM)" in text
    assert "Synchronization" in text


def test_render_counts(gauss_pair):
    mp_text = render_mp_counts(gauss_pair)
    assert "Computation Cycles Per Data Byte" in mp_text
    sm_text = render_sm_counts(gauss_pair)
    assert "Remote" in sm_text


def test_render_pair_with_phases(gauss_pair):
    text = render_pair(gauss_pair, phases=True)
    assert "[init]" in text
    assert "[main]" in text


def test_phase_specific_render(gauss_pair):
    text = render_mp_breakdown(gauss_pair, phase="main")
    assert "[main]" in text
