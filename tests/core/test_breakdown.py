"""Unit tests for breakdown/count records."""

from repro.core.breakdown import MpBreakdown, MpCounts, SmBreakdown, SmCounts
from repro.stats.categories import MpCat, SmCat
from repro.stats.collector import ProcStats, StatsBoard


def mp_board():
    proc = ProcStats(0)
    proc.charge(MpCat.COMPUTE, 900)
    proc.charge(MpCat.LOCAL_MISS, 40)
    proc.charge(MpCat.LIB_COMPUTE, 30)
    proc.charge(MpCat.LIB_MISS, 10)
    proc.charge(MpCat.NETWORK_ACCESS, 15)
    proc.charge(MpCat.BARRIER, 5)
    proc.count("data_bytes", 300)
    proc.count("control_bytes", 100)
    proc.count("messages_sent", 20)
    return StatsBoard([proc])


def sm_board():
    proc = ProcStats(0)
    proc.charge(SmCat.COMPUTE, 800)
    proc.charge(SmCat.PRIVATE_MISS, 50)
    proc.charge(SmCat.SHARED_MISS, 100)
    proc.charge(SmCat.WRITE_FAULT, 20)
    proc.charge(SmCat.BARRIER, 30)
    proc.count("shared_misses_local", 3)
    proc.count("shared_misses_remote", 7)
    proc.count("data_bytes", 200)
    return StatsBoard([proc])


def test_mp_breakdown_groups_communication():
    breakdown = MpBreakdown.from_board(mp_board())
    assert breakdown.communication == 55
    assert breakdown.total == 1000
    labels = [label for label, _v, _d in breakdown.rows()]
    assert "Communication" in labels
    assert "Lib Comp" in labels
    assert "Barriers" in labels


def test_mp_breakdown_omits_zero_barriers():
    proc = ProcStats(0)
    proc.charge(MpCat.COMPUTE, 10)
    breakdown = MpBreakdown.from_board(StatsBoard([proc]))
    labels = [label for label, _v, _d in breakdown.rows()]
    assert "Barriers" not in labels


def test_sm_breakdown_groups():
    breakdown = SmBreakdown.from_board(sm_board())
    assert breakdown.data_access == 170
    assert breakdown.synchronization == 30
    assert breakdown.total == 1000


def test_mp_counts_intensity_metric():
    counts = MpCounts.from_board(mp_board())
    assert counts.bytes_transmitted == 400
    assert counts.comp_cycles_per_data_byte == 900 / 300


def test_mp_counts_no_data_bytes():
    proc = ProcStats(0)
    proc.charge(MpCat.COMPUTE, 10)
    counts = MpCounts.from_board(StatsBoard([proc]))
    assert counts.comp_cycles_per_data_byte == float("inf")


def test_sm_counts_remote_fraction():
    counts = SmCounts.from_board(sm_board())
    assert counts.shared_misses == 10
    assert counts.remote_fraction == 0.7


def test_sm_counts_zero_misses():
    proc = ProcStats(0)
    counts = SmCounts.from_board(StatsBoard([proc]))
    assert counts.remote_fraction == 0.0
