"""Tests for the fidelity scorecard machinery."""

import pytest

from repro.core.fidelity import (
    PAIR_KEYS,
    FidelityRow,
    render_scorecard,
    summarize,
)


def test_pair_keys_cover_all_pair_experiments():
    assert set(PAIR_KEYS) == {"mse", "gauss", "em3d", "lcp", "alcp"}


def test_fidelity_row_error():
    row = FidelityRow("x", "m", paper=90.0, measured=84.5)
    assert row.abs_error == pytest.approx(5.5)


def test_summarize_statistics():
    rows = [
        FidelityRow("a", "m1", 50.0, 52.0),
        FidelityRow("a", "m2", 50.0, 65.0),
        FidelityRow("a", "m3", 50.0, 50.0),
    ]
    stats = summarize(rows)
    assert stats["rows"] == 3
    assert stats["mean_abs_error_pp"] == pytest.approx((2 + 15 + 0) / 3)
    assert stats["max_abs_error_pp"] == 15.0
    assert stats["within_10pp"] == pytest.approx(2 / 3)


def test_summarize_empty_rejected():
    with pytest.raises(ValueError):
        summarize([])


def test_render_scorecard_format():
    rows = [FidelityRow("mse", "MP computation share", 90.0, 88.0)]
    text = render_scorecard(rows)
    assert "Fidelity scorecard" in text
    assert "mse" in text
    assert "2.0p" in text
    assert "mean |error|" in text
