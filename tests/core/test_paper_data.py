"""Consistency checks on the transcribed paper results.

These tests hold the transcription itself to account: component rows
must sum to the printed totals (within the paper's 0.1M rounding), and
the derived metrics must match the printed ones.
"""

import pytest

from repro.core import paper_data as pd


@pytest.mark.parametrize("key", sorted(pd.MP_BREAKDOWNS))
def test_mp_breakdown_components_sum_to_total(key):
    row = pd.MP_BREAKDOWNS[key]
    total = row.computation + row.local_misses + row.communication + row.barriers
    # Paper prints one decimal per row: allow cumulative rounding slack.
    assert total == pytest.approx(row.total, abs=0.5), key


@pytest.mark.parametrize("key", sorted(pd.SM_BREAKDOWNS))
def test_sm_breakdown_components_sum_to_total(key):
    row = pd.SM_BREAKDOWNS[key]
    total = row.computation + row.cache_misses + row.synchronization
    assert total == pytest.approx(row.total, abs=0.5), key


@pytest.mark.parametrize("key", sorted(pd.SM_COUNTS))
def test_sm_counts_local_plus_remote(key):
    row = pd.SM_COUNTS[key]
    assert row.shared_local + row.shared_remote == pytest.approx(
        row.shared_misses, rel=0.02
    )


def test_relative_ratios_match_totals():
    for app in ("mse", "gauss", "lcp", "alcp"):
        mp = pd.MP_BREAKDOWNS[app]
        sm = pd.SM_BREAKDOWNS[app]
        assert mp.total / sm.total == pytest.approx(mp.relative_to_sm, abs=0.03)
        assert sm.total / mp.total == pytest.approx(sm.relative_to_mp, abs=0.03)


def test_em3d_phases_sum_to_total():
    for side in (pd.MP_BREAKDOWNS, pd.SM_BREAKDOWNS):
        init, main, total = (
            side["em3d_init"], side["em3d_main"], side["em3d_total"]
        )
        assert init.total + main.total == pytest.approx(total.total, abs=0.6)
        assert init.computation + main.computation == pytest.approx(
            total.computation, abs=0.5
        )


def test_em3d_headline_ratio():
    mp = pd.MP_BREAKDOWNS["em3d_total"]
    sm = pd.SM_BREAKDOWNS["em3d_total"]
    assert sm.total / mp.total == pytest.approx(2.0, abs=0.05)


def test_intensity_metric_is_derivable():
    """comp cycles / data bytes matches the printed metric (paper
    computes it from per-processor averages, as we do)."""
    for key, counts in pd.MP_COUNTS.items():
        base = key.split("_")[0]
        breakdown_key = {"em3d": "em3d_main"}.get(base, base)
        if key == "em3d_main":
            breakdown_key = "em3d_main"
        if key in ("lcp", "alcp"):
            breakdown_key = key
        computation = pd.MP_BREAKDOWNS[breakdown_key].computation * 1e6
        derived = computation / counts.bytes_data
        assert derived == pytest.approx(counts.comp_per_data_byte, rel=0.15), key


def test_collective_strategy_ordering():
    s = pd.COLLECTIVE_STRATEGIES_M
    assert s["lopsided"] < s["binary"] < s["flat"]


def test_contention_figures():
    c = pd.GAUSS_CONTENTION
    assert c["avg_shared_miss_cycles"] > c["idle_shared_miss_cycles"]
    assert (
        c["avg_shared_miss_cycles"] - c["idle_shared_miss_cycles"]
        > c["avg_directory_queue_delay"]
    )


def test_async_converges_faster():
    assert pd.LCP_STEPS["async_sm"] < pd.LCP_STEPS["sync"]
    assert pd.LCP_STEPS["async_mp"] < pd.LCP_STEPS["sync"]
