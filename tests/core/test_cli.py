"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.core import experiments
from repro.runner.api import clear_memory_cache
from repro.runner.config import ExperimentConfig


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "em3d" in out
    assert "Tables" in out


def test_run_requires_experiments(capsys):
    assert main(["run"]) == 2


def test_run_unknown_experiment_fails_fast(capsys):
    assert main(["run", "nope"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment 'nope'" in err


def test_run_validation(capsys):
    assert main(["run", "validation", "--jobs", "1"]) == 0
    out = capsys.readouterr().out
    assert "[PASS]" in out
    assert "Section 4.1" in out


def test_run_serves_second_invocation_from_cache(capsys):
    assert main(["run", "validation", "--jobs", "1"]) == 0
    capsys.readouterr()
    clear_memory_cache()
    assert main(["run", "validation", "--jobs", "1"]) == 0
    out = capsys.readouterr().out
    assert "(cache hit)" in out
    assert "[PASS]" in out


def test_run_json_export(tmp_path, capsys):
    out_path = tmp_path / "records.json"
    assert main(["run", "validation", "--jobs", "1", "--json", str(out_path)]) == 0
    records = json.loads(out_path.read_text())
    assert len(records) == 1
    assert records[0]["exp_id"] == "validation"
    assert records[0]["checks"]
    assert all(ok for _n, ok, _d in records[0]["checks"])
    assert records[0]["cache_key"]


def test_run_failing_checks_exit_code(monkeypatch, capsys):
    spec = experiments.ExperimentSpec(
        id="fake_fail",
        title="always fails",
        paper_tables="none",
        description="test-only",
        runner=lambda config: {"v": 1},
        config=ExperimentConfig(exp_id="fake_fail"),
        shape=lambda r: [("doomed", False, "intentional")],
        paper={"n/a": 0},
    )
    monkeypatch.setitem(experiments.EXPERIMENTS, "fake_fail", spec)
    clear_memory_cache()
    assert main(["run", "fake_fail", "--jobs", "1", "--no-cache"]) == 1
    out = capsys.readouterr().out
    assert "[FAIL] doomed" in out
    clear_memory_cache()


def test_cache_ls_and_clear(capsys):
    assert main(["cache", "ls"]) == 0
    assert "cache empty" in capsys.readouterr().out
    assert main(["run", "validation", "--jobs", "1"]) == 0
    capsys.readouterr()
    assert main(["cache", "ls"]) == 0
    assert "validation" in capsys.readouterr().out
    assert main(["cache", "clear"]) == 0
    assert "removed 1 records" in capsys.readouterr().out
    assert main(["cache", "ls"]) == 0
    assert "cache empty" in capsys.readouterr().out


def test_parser_rejects_no_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_run_flags():
    args = build_parser().parse_args(
        ["run", "--all", "--jobs", "4", "--json", "out.json", "--force"]
    )
    assert args.all and args.jobs == 4 and args.json == "out.json"
    assert args.force and not args.no_cache


# -- memory-model and machine-preset flags -----------------------------------


def test_check_unknown_consistency_is_usage_error(capsys):
    """A typo'd model name must be a did-you-mean usage error (exit 2),
    never a silently skipped shape (exit 0)."""
    assert main(["check", "--litmus", "--consistency", "tsso"]) == 2
    err = capsys.readouterr().err
    assert "unknown consistency 'tsso'" in err
    assert "did you mean 'tso'" in err


def test_run_unknown_consistency_is_usage_error(capsys):
    assert main(["run", "validation", "--consistency", "sq"]) == 2
    err = capsys.readouterr().err
    assert "unknown consistency 'sq'" in err


def test_run_unknown_preset_is_usage_error(capsys):
    assert main(["run", "validation", "--preset", "multicre"]) == 2
    err = capsys.readouterr().err
    assert "did you mean 'multicore'" in err


def test_check_litmus_under_tso(capsys):
    assert main(["check", "--litmus", "--consistency", "tso",
                 "--litmus-seeds", "2"]) == 0
    out = capsys.readouterr().out
    assert "consistency=tso" in out
    assert "relaxed outcome observed (permitted)" in out  # sb shape
    assert "[FAIL]" not in out


def test_check_matrix(capsys):
    assert main(["check", "--matrix", "--litmus-seeds", "2"]) == 0
    out = capsys.readouterr().out
    assert "litmus matrix: 27 cells" in out
    assert "[FAIL]" not in out


def test_run_with_preset_and_consistency(capsys):
    assert main(["run", "validation", "--jobs", "1", "--no-cache",
                 "--preset", "multicore", "--consistency", "tso"]) == 0
    out = capsys.readouterr().out
    assert "[PASS]" in out
