"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "em3d" in out
    assert "Tables" in out


def test_run_requires_experiments(capsys):
    assert main(["run"]) == 2


def test_run_unknown_experiment_fails_fast():
    with pytest.raises(KeyError):
        main(["run", "nope"])


def test_run_validation(capsys):
    assert main(["run", "validation"]) == 0
    out = capsys.readouterr().out
    assert "[PASS]" in out
    assert "Section 4.1" in out


def test_parser_rejects_no_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
