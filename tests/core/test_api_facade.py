"""The repro.api facade: blessed surface, stability, deprecations."""

import pytest

from repro import api


def test_facade_exports_the_blessed_surface():
    for name in ("resolve_config", "run_raw", "record_for", "execute",
                 "sweep", "clear_memory_cache", "ResultCache", "RunRecord",
                 "ExperimentConfig", "SweepSpec", "SweepResult", "get_sweep"):
        assert name in api.__all__
        assert hasattr(api, name)


def test_facade_all_is_accurate():
    for name in api.__all__:
        assert getattr(api, name) is not None


def test_facade_functions_are_the_canonical_ones():
    from repro.runner import api as runner_api

    assert api.run_raw is runner_api.run_raw
    assert api.record_for is runner_api.record_for
    assert api.execute is runner_api.execute
    assert api.resolve_config is runner_api.resolve_config


def test_facade_run_raw_works():
    api.clear_memory_cache()
    result = api.run_raw("validation")
    assert result is api.run_raw("validation")
    api.clear_memory_cache()


def test_facade_sweep_accepts_spec_name(monkeypatch, tmp_path):
    from repro.core import experiments
    from repro.runner.cache import ResultCache
    from repro.runner.config import ExperimentConfig
    from repro.sweep import SweepSpec
    from repro.sweep import specs as sweep_specs

    exp = experiments.ExperimentSpec(
        id="fake_facade", title="f", paper_tables="none", description="d",
        runner=lambda config: {"value": float(config.procs)},
        config=ExperimentConfig(exp_id="fake_facade"),
        shape=lambda r: [("ran", True, "ok")], paper={},
    )
    monkeypatch.setitem(experiments.EXPERIMENTS, "fake_facade", exp)
    spec = SweepSpec(
        name="facade-tiny", exp_id="fake_facade",
        axes=(("procs", (1, 2)),), metrics=("value",),
        extra_metrics={"value": lambda s: s["data"]["value"]},
    )
    monkeypatch.setitem(sweep_specs.SWEEP_SPECS, "facade-tiny", spec)

    api.clear_memory_cache()
    result = api.sweep("facade-tiny", jobs=1, cache=ResultCache(tmp_path))
    assert result.series("value") == ([1, 2], [1.0, 2.0])
    # Axis replacement flows through the facade too.
    narrowed = api.sweep("facade-tiny", axes={"procs": (2,)}, jobs=1,
                         cache=ResultCache(tmp_path))
    assert narrowed.series("value") == ([2], [2.0])
    api.clear_memory_cache()


def test_facade_sweep_unknown_name():
    with pytest.raises(ValueError, match="unknown sweep"):
        api.sweep("definitely-not-a-sweep")


def test_run_experiment_wrapper_deprecated_in_favor_of_facade():
    from repro.core.experiments import run_experiment

    api.clear_memory_cache()
    with pytest.warns(DeprecationWarning, match="repro.api.run_raw"):
        run_experiment("validation")
    api.clear_memory_cache()
