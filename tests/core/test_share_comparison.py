"""Tests for the paper-vs-measured share comparison rendering."""

import pytest

from repro.apps.gauss.common import GaussConfig
from repro.apps.gauss.mp import run_gauss_mp
from repro.apps.gauss.sm import run_gauss_sm
from repro.arch.params import MachineParams
from repro.core.study import PairResult
from repro.core.tables import render_share_comparison
from repro.mp.machine import MpMachine
from repro.sm.machine import SmMachine


@pytest.fixture(scope="module")
def gauss_pair():
    config = GaussConfig.small(n=24)
    mp_result, _x = run_gauss_mp(
        MpMachine(MachineParams.paper(num_processors=4), seed=1), config
    )
    sm_result, _x2 = run_gauss_sm(
        SmMachine(MachineParams.paper(num_processors=4), seed=1), config
    )
    return PairResult(name="Gauss", mp_result=mp_result, sm_result=sm_result)


def test_share_comparison_renders(gauss_pair):
    text = render_share_comparison(gauss_pair, "gauss")
    assert "paper (32p)" in text
    assert "this run" in text
    assert "MP communication" in text
    # Paper's Gauss-MP library+NI communication is 28.3M of 71.0M (40%;
    # the table's 42% "Broadcast/Reduction" group also includes its
    # barriers).
    assert "40%" in text


def test_share_comparison_unknown_key(gauss_pair):
    with pytest.raises(KeyError):
        render_share_comparison(gauss_pair, "nope")
