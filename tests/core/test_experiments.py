"""Registry tests (cheap ones; full experiments run in benchmarks/)."""

import pytest

from repro.api import run_raw
from repro.core.experiments import (
    EXPERIMENTS,
    get_experiment,
    run_experiment,
)
from repro.runner.api import clear_memory_cache
from repro.runner.config import ExperimentConfig

EXPECTED_IDS = {
    "mse",
    "gauss",
    "gauss_collectives",
    "gauss_contention",
    "em3d",
    "em3d_bigcache",
    "em3d_localalloc",
    "em3d_protocols",
    "lcp",
    "alcp",
    "validation",
}


def test_registry_covers_all_paper_tables():
    assert set(EXPERIMENTS) == EXPECTED_IDS
    covered = " ".join(spec.paper_tables for spec in EXPERIMENTS.values())
    for table in range(4, 24):
        assert str(table) in covered, f"paper table {table} not mapped"


def test_specs_are_complete():
    for spec in EXPERIMENTS.values():
        assert spec.title
        assert spec.description
        assert callable(spec.runner)
        assert callable(spec.shape)
        assert isinstance(spec.config, ExperimentConfig)
        assert spec.config.exp_id == spec.id
        assert spec.paper, f"{spec.id} has no paper reference values"


def test_runners_are_top_level_functions():
    """Runners must be picklable by name for the multiprocessing pool."""
    for spec in EXPERIMENTS.values():
        assert spec.runner.__qualname__ == spec.runner.__name__, (
            f"{spec.id}'s runner is not a module-level function"
        )


def test_after_references_are_valid():
    for spec in EXPERIMENTS.values():
        for dep in spec.after:
            assert dep in EXPERIMENTS, f"{spec.id} depends on unknown {dep!r}"


def test_get_experiment_unknown():
    with pytest.raises(KeyError):
        get_experiment("nope")


def test_validation_experiment_runs_and_passes():
    clear_memory_cache()
    result = run_raw("validation")
    checks = EXPERIMENTS["validation"].shape(result)
    assert checks
    for name, ok, detail in checks:
        assert ok, f"{name}: {detail}"


def test_results_are_memoized():
    clear_memory_cache()
    first = run_raw("validation")
    second = run_raw("validation")
    assert first is second
    clear_memory_cache()


def test_run_experiment_wrapper_is_deprecated():
    clear_memory_cache()
    with pytest.warns(DeprecationWarning, match="repro.api.run_raw"):
        result = run_experiment("validation")
    assert result is run_raw("validation")  # same memo slot
    clear_memory_cache()


def test_validation_expectations_are_topology_aware():
    """Under the cluster preset the 0->1 hops are on-node, and the
    analytic expectations must use the same two-level latency the
    machine charges (a flat-latency expectation would be ~5x off)."""
    clear_memory_cache()
    result = run_raw("validation", overrides={"preset": "cluster"})
    checks = EXPERIMENTS["validation"].shape(result)
    assert checks
    for name, ok, detail in checks:
        assert ok, f"{name}: {detail}"
    clear_memory_cache()


def test_paper_only_checks_waived_off_the_paper_preset():
    """Checks naming claims pinned to the 1994 machine gate only the
    paper preset; under modern presets build_record records them as
    waived (passing, with the measured numbers kept in the detail)."""
    from repro.runner.record import build_record

    spec = EXPERIMENTS["gauss_collectives"]
    assert spec.paper_only == ("lop-sided beats binary",)

    class _Spec:
        id = "fake"
        title = "fake"
        paper_tables = ""
        notes = ""
        paper_only = ("claim-a",)

        @staticmethod
        def shape(result):
            return [("claim-a", False, "flipped"), ("claim-b", True, "held")]

    config = ExperimentConfig(exp_id="validation", preset="cluster")
    record = build_record(_Spec, config, result={}, elapsed_seconds=0.0)
    assert record.checks == [
        ["claim-a", True, "waived under preset='cluster': flipped"],
        ["claim-b", True, "held"],
    ]
    # On the paper machine the same failing check gates.
    record = build_record(
        _Spec, ExperimentConfig(exp_id="validation"), result={},
        elapsed_seconds=0.0,
    )
    assert record.checks[0] == ["claim-a", False, "flipped"]
