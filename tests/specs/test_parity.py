"""YAML specs resolve bit-identically to the old Python registrations.

The four shipped sweeps used to be Python ``SweepSpec(...)`` calls in
``repro.sweep.specs``; they are YAML documents now. This test
reconstructs the old registrations verbatim (descriptions, grids,
crossovers — the callables come from :mod:`repro.specs.library`, the
same objects the YAML loader resolves by name) and asserts dataclass
equality, so a YAML drift from the historical registration is a test
failure, not a silent behaviour change. Experiment specs must resolve
to the exact ``ExperimentConfig`` (same cache key) that
``api.resolve_config`` builds from the same overrides.
"""

from repro.runner.api import resolve_config
from repro.runner.cache import key_for_jsonable
from repro.specs import (
    CHECKS,
    DERIVES,
    discovered_experiments,
    discovered_sweeps,
)
from repro.sweep.spec import CrossoverSpec, SweepSpec

#: The historical Python registrations, verbatim.
_EM3D_SMALL = {
    "procs": 4,
    "app": {"nodes_per_proc": 40, "degree": 4, "iterations": 3},
}
_EM3D_MODERN = {
    "procs": 16,
    "app": {"nodes_per_proc": 16, "degree": 4, "iterations": 3},
}

LEGACY_SPECS = {
    spec.name: spec
    for spec in (
        SweepSpec(
            name="em3d-latency",
            exp_id="em3d",
            description=(
                "EM3D cycle totals vs network latency: the MP version's "
                "split-phase sends hide latency the SM version eats as "
                "remote-miss stalls, so MP's win grows with latency and "
                "shrinks toward parity as the network gets faster."
            ),
            axes=(("net_latency", (0, 25, 50, 100, 200)),),
            metrics=("mp_total", "sm_total", "sm_over_mp"),
            base_overrides=_EM3D_SMALL,
            crossovers=(
                CrossoverSpec(
                    name="sm-catches-mp",
                    metric="sm_over_mp",
                    level=1.0,
                    description="latency below which SM would match MP",
                ),
            ),
            checks=CHECKS["em3d-latency"],
        ),
        SweepSpec(
            name="em3d-cache",
            exp_id="em3d",
            description=(
                "EM3D-SM data-access share vs cache size: below the "
                "working set the share of time spent in shared/private "
                "misses climbs steeply; MP's locally-allocated graph "
                "halves make it far less cache-sensitive."
            ),
            axes=(("cache_kb", (2, 4, 8, 16)),),
            metrics=("sm_data_access_share", "sm_total", "mp_total"),
            base_overrides=_EM3D_SMALL,
            checks=CHECKS["em3d-cache"],
        ),
        SweepSpec(
            name="gauss-speedup",
            exp_id="gauss",
            description=(
                "Gauss cycle totals vs processor count on a fixed n=64 "
                "problem: both versions speed up monotonically, and the "
                "SM version overtakes MP as the MP broadcast of pivot "
                "rows grows with the processor count."
            ),
            axes=(("procs", (1, 2, 4, 8)),),
            metrics=("mp_total", "sm_total", "sm_over_mp"),
            base_overrides={"app": {"n": 64}},
            crossovers=(
                CrossoverSpec(
                    name="sm-overtakes-mp",
                    metric="sm_over_mp",
                    level=1.0,
                    description="procs at which SM becomes faster than MP",
                ),
            ),
            checks=CHECKS["gauss-speedup"],
            derive=DERIVES["speedup-vs-first"],
        ),
        SweepSpec(
            name="em3d-modern",
            exp_id="em3d",
            description=(
                "EM3D across machine generations: the paper's CM-5 "
                "table, a multicore-era table (on-chip network, memory "
                "wall), and a cluster of multicores with two-level "
                "latency. The memory wall makes SM's remote misses "
                "dearer while MP's split-phase sends keep hiding "
                "latency, so MP's 1994 win survives — and grows — on "
                "modern parameters."
            ),
            axes=(("preset", ("paper", "multicore", "cluster")),),
            metrics=("mp_total", "sm_total", "sm_over_mp"),
            base_overrides=_EM3D_MODERN,
            checks=CHECKS["em3d-modern"],
        ),
    )
}


def test_all_four_shipped_sweeps_discovered():
    assert set(LEGACY_SPECS) <= set(discovered_sweeps())


def test_yaml_sweeps_equal_legacy_registrations_bit_for_bit():
    yaml_specs = discovered_sweeps()
    for name, legacy in LEGACY_SPECS.items():
        assert yaml_specs[name] == legacy, name


def test_yaml_sweep_base_configs_share_cache_keys_with_legacy():
    yaml_specs = discovered_sweeps()
    for name, legacy in LEGACY_SPECS.items():
        via_yaml = resolve_config(
            yaml_specs[name].exp_id, yaml_specs[name].base_overrides
        )
        via_python = resolve_config(legacy.exp_id, legacy.base_overrides)
        assert via_yaml == via_python
        assert key_for_jsonable(via_yaml.to_jsonable()) == key_for_jsonable(
            via_python.to_jsonable()
        ), name


def test_checks_and_derive_are_the_library_objects():
    yaml_specs = discovered_sweeps()
    assert yaml_specs["em3d-latency"].checks is CHECKS["em3d-latency"]
    assert yaml_specs["gauss-speedup"].derive is DERIVES["speedup-vs-first"]


def test_experiment_specs_resolve_like_api_resolve_config():
    docs = discovered_experiments()
    assert {"em3d-small", "em3d-multicore", "em3d-cluster", "gauss-n64"} <= set(
        docs
    )
    for doc in docs.values():
        direct = resolve_config(doc.experiment, doc.overrides or None)
        assert doc.resolve() == direct
        assert key_for_jsonable(doc.resolve().to_jsonable()) == key_for_jsonable(
            direct.to_jsonable()
        ), doc.id


def test_modern_experiment_specs_pin_presets():
    docs = discovered_experiments()
    assert docs["em3d-multicore"].resolve().preset == "multicore"
    assert docs["em3d-cluster"].resolve().preset == "cluster"
