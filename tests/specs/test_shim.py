"""The deprecated ``repro.sweep.specs`` shim round-trips through YAML."""

import warnings

import pytest

import repro.sweep
from repro.specs import discovered_sweeps
from repro.specs import get_sweep as canonical_get_sweep
from repro.sweep import specs as sweep_specs
from repro.sweep.spec import SweepSpec


def test_sweep_specs_attribute_warns():
    with pytest.warns(DeprecationWarning, match="repro.sweep.specs is deprecated"):
        registry = sweep_specs.SWEEP_SPECS
    assert "em3d-latency" in registry


def test_shim_dict_is_identity_stable():
    with pytest.warns(DeprecationWarning):
        first = sweep_specs.SWEEP_SPECS
    with pytest.warns(DeprecationWarning):
        second = sweep_specs.SWEEP_SPECS
    assert first is second  # monkeypatch.setitem must hit the live dict


def test_shim_round_trips_the_yaml_loader():
    with pytest.warns(DeprecationWarning):
        registry = sweep_specs.SWEEP_SPECS
    yaml_specs = discovered_sweeps()
    for name in ("em3d-latency", "em3d-cache", "gauss-speedup", "em3d-modern"):
        assert registry[name] == yaml_specs[name]


def test_shim_get_sweep_warns_and_matches_canonical():
    with pytest.warns(DeprecationWarning):
        via_shim = sweep_specs.get_sweep("em3d-latency")
    assert via_shim == canonical_get_sweep("em3d-latency")


def test_package_get_sweep_is_canonical_and_silent():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        spec = repro.sweep.get_sweep("em3d-latency")
    assert spec == canonical_get_sweep("em3d-latency")


def test_registry_injection_still_resolves(monkeypatch):
    injected = SweepSpec(
        name="injected",
        exp_id="em3d",
        axes=(("procs", (1, 2)),),
        metrics=("mp_total",),
    )
    with pytest.warns(DeprecationWarning):
        monkeypatch.setitem(sweep_specs.SWEEP_SPECS, "injected", injected)
    assert canonical_get_sweep("injected") is injected


def test_unknown_attribute_still_raises():
    with pytest.raises(AttributeError):
        sweep_specs.no_such_name
