"""YAML spec loading: validation errors, search path, globs."""

import textwrap

import pytest

from repro.specs import (
    SpecError,
    discovered_sweeps,
    expand_glob,
    get_sweep,
    list_specs,
    load_spec,
    load_spec_file,
    load_sweep,
)

TINY_SWEEP = textwrap.dedent(
    """\
    kind: sweep
    id: {id}
    experiment: em3d
    description: tiny
    base_overrides: {{procs: 2, app: {{nodes_per_proc: 8, degree: 2, iterations: 2}}}}
    axes:
      - axis: net_latency
        values: [0, 50]
    metrics: [mp_total]
    """
)


def _write(tmp_path, name, text, kind="sweeps"):
    sub = tmp_path / kind
    sub.mkdir(parents=True, exist_ok=True)
    path = sub / name
    path.write_text(text)
    return path


# ---------------------------------------------------------------------------
# Malformed documents fail at load with did-you-mean errors.
# ---------------------------------------------------------------------------


def test_unknown_top_level_key_suggests(tmp_path):
    doc = TINY_SWEEP.format(id="t").replace("metrics:", "metrcs:")
    path = _write(tmp_path, "t.yaml", doc)
    with pytest.raises(SpecError, match="unknown key 'metrcs'.*did you mean 'metrics'"):
        load_spec_file(path)


def test_unknown_kind_rejected(tmp_path):
    path = _write(tmp_path, "t.yaml", "kind: sweeep\nid: t\n")
    with pytest.raises(SpecError, match="unknown kind 'sweeep'.*did you mean 'sweep'"):
        load_spec_file(path)


def test_unknown_experiment_suggests(tmp_path):
    doc = TINY_SWEEP.format(id="t").replace("experiment: em3d", "experiment: em3dd")
    path = _write(tmp_path, "t.yaml", doc)
    with pytest.raises(SpecError, match="unknown experiment 'em3dd'.*did you mean 'em3d'"):
        load_spec_file(path)


def test_unknown_metric_suggests(tmp_path):
    doc = TINY_SWEEP.format(id="t").replace("[mp_total]", "[sm_over_mpp]")
    path = _write(tmp_path, "t.yaml", doc)
    with pytest.raises(SpecError, match="unknown metric 'sm_over_mpp'.*did you mean 'sm_over_mp'"):
        load_spec_file(path)


def test_unknown_checks_callable_suggests(tmp_path):
    doc = TINY_SWEEP.format(id="t") + "checks: em3d-latencyy\n"
    path = _write(tmp_path, "t.yaml", doc)
    with pytest.raises(SpecError, match="did you mean 'em3d-latency'"):
        load_spec_file(path)


def test_unknown_axis_fails_at_load_not_mid_sweep(tmp_path):
    doc = TINY_SWEEP.format(id="t").replace("net_latency", "net_latencey")
    path = _write(tmp_path, "t.yaml", doc)
    with pytest.raises(SpecError, match="net_latencey"):
        load_spec_file(path)


def test_invalid_yaml_syntax_names_the_file(tmp_path):
    path = _write(tmp_path, "t.yaml", "kind: [unclosed\n")
    with pytest.raises(SpecError, match="invalid YAML"):
        load_spec_file(path)
    with pytest.raises(SpecError, match="t.yaml"):
        load_spec_file(path)


def test_non_mapping_document_rejected(tmp_path):
    path = _write(tmp_path, "t.yaml", "- just\n- a list\n")
    with pytest.raises(SpecError, match="must be a YAML mapping"):
        load_spec_file(path)


def test_missing_required_key_named(tmp_path):
    doc = "\n".join(
        line for line in TINY_SWEEP.format(id="t").splitlines()
        if not line.startswith("id:")
    )
    path = _write(tmp_path, "t.yaml", doc)
    with pytest.raises(SpecError, match="missing required key 'id'"):
        load_spec_file(path)


def test_empty_axes_rejected(tmp_path):
    doc = TINY_SWEEP.format(id="t")
    doc = doc[: doc.index("axes:")] + "axes: []\nmetrics: [mp_total]\n"
    path = _write(tmp_path, "t.yaml", doc)
    with pytest.raises(SpecError, match="'axes' must be a non-empty list"):
        load_spec_file(path)


def test_bad_override_key_suggests(tmp_path):
    doc = TINY_SWEEP.format(id="t").replace("procs: 2", "prcs: 2")
    path = _write(tmp_path, "t.yaml", doc)
    with pytest.raises(SpecError):
        load_spec_file(path)


# ---------------------------------------------------------------------------
# Discovery and the search path.
# ---------------------------------------------------------------------------


def test_duplicate_id_within_one_directory_errors(tmp_path, monkeypatch):
    _write(tmp_path, "a.yaml", TINY_SWEEP.format(id="dup"))
    _write(tmp_path, "b.yaml", TINY_SWEEP.format(id="dup"))
    monkeypatch.setenv("REPRO_SPECS_DIR", str(tmp_path))
    with pytest.raises(SpecError, match="duplicate spec id 'dup'"):
        discovered_sweeps()


def test_user_dir_shadows_shipped_spec(tmp_path, monkeypatch):
    _write(tmp_path, "mine.yaml", TINY_SWEEP.format(id="em3d-latency"))
    monkeypatch.setenv("REPRO_SPECS_DIR", str(tmp_path))
    spec = discovered_sweeps()["em3d-latency"]
    assert spec.description == "tiny"
    assert spec.axes == (("net_latency", (0, 50)),)


def test_user_dir_adds_new_spec(tmp_path, monkeypatch):
    _write(tmp_path, "mine.yaml", TINY_SWEEP.format(id="my-sweep"))
    monkeypatch.setenv("REPRO_SPECS_DIR", str(tmp_path))
    sweeps = discovered_sweeps()
    assert "my-sweep" in sweeps
    assert "em3d-latency" in sweeps  # shipped specs still visible


def test_list_specs_covers_all_shipped_ids():
    ids = {(info.kind, info.id) for info in list_specs()}
    assert {
        ("sweep", "em3d-latency"),
        ("sweep", "em3d-cache"),
        ("sweep", "em3d-modern"),
        ("sweep", "gauss-speedup"),
        ("experiment", "em3d-small"),
        ("experiment", "em3d-multicore"),
        ("experiment", "em3d-cluster"),
        ("experiment", "gauss-n64"),
    } <= ids


# ---------------------------------------------------------------------------
# Resolution: ids, paths, globs.
# ---------------------------------------------------------------------------


def test_load_spec_by_id_and_by_path_agree(tmp_path):
    path = _write(tmp_path, "t.yaml", TINY_SWEEP.format(id="t"))
    by_path = load_spec(str(path))
    assert by_path.name == "t"
    assert load_spec("em3d-latency") == discovered_sweeps()["em3d-latency"]


def test_load_spec_unknown_ref_suggests():
    with pytest.raises(SpecError, match="unknown spec 'em3d-latencey'.*did you mean 'em3d-latency'"):
        load_spec("em3d-latencey")


def test_load_spec_missing_path_errors():
    with pytest.raises(SpecError, match="no spec file at"):
        load_spec("no/such/file.yaml")


def test_load_sweep_rejects_experiment_specs():
    with pytest.raises(SpecError, match="experiment spec, not a sweep"):
        load_sweep("em3d-small")


def test_get_sweep_typo_matches_cli_contract():
    with pytest.raises(ValueError) as excinfo:
        get_sweep("em3d-latencyy")
    message = str(excinfo.value)
    assert "did you mean 'em3d-latency'" in message
    assert "available:" in message


def test_expand_glob_falls_back_to_shipped_dir(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)  # no ./specs here; fallback anchor kicks in
    paths = expand_glob("specs/sweeps/em3d-*.yaml")
    names = {p.stem for p in paths}
    assert {"em3d-latency", "em3d-cache", "em3d-modern"} <= names


def test_expand_glob_no_match_returns_empty():
    assert expand_glob("specs/sweeps/zzz-nothing-*.yaml") == []
