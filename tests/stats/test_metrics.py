"""Named metric extraction from run-record summaries."""

import pytest

from repro.stats.metrics import (
    METRICS,
    derive_metrics,
    metric_names,
    resolve_metric,
)


def _pair_summary():
    """A handcrafted pair summary with easily checkable numbers."""
    mp_overall = {"computation": 60.0, "communication": 30.0,
                  "barriers": 10.0, "total": 100.0}
    sm_overall = {"computation": 100.0, "data_access": 80.0,
                  "synchronization": 20.0, "total": 200.0}
    return {
        "kind": "pair",
        "name": "Fake",
        "phases": ["init", "main"],
        "mp": {"overall": mp_overall,
               "phases": {"init": {"total": 20.0}, "main": {"total": 80.0}}},
        "sm": {"overall": sm_overall,
               "phases": {"init": {"total": 50.0}, "main": {"total": 150.0}}},
        "mp_counts": {"bytes_transmitted": 4000.0,
                      "comp_cycles_per_data_byte": 15.0},
        "sm_counts": {"shared_misses": 500.0, "private_misses": 100.0,
                      "remote_fraction": 0.75, "bytes_transmitted": 9000.0,
                      "comp_cycles_per_data_byte": 11.0},
        "mp_relative_to_sm": 0.5,
        "sm_relative_to_mp": 2.0,
        "extra": {},
    }


def test_totals_and_ratios():
    s = _pair_summary()
    assert METRICS["mp_total"](s) == 100.0
    assert METRICS["sm_total"](s) == 200.0
    assert METRICS["mp_over_sm"](s) == 0.5
    assert METRICS["sm_over_mp"](s) == 2.0


def test_shares():
    s = _pair_summary()
    assert METRICS["mp_compute_share"](s) == 0.6
    assert METRICS["mp_comm_share"](s) == 0.3
    assert METRICS["mp_barrier_share"](s) == 0.1
    assert METRICS["sm_compute_share"](s) == 0.5
    assert METRICS["sm_data_access_share"](s) == 0.4
    assert METRICS["sm_sync_share"](s) == 0.1


def test_phase_totals_and_counts():
    s = _pair_summary()
    assert METRICS["mp_main_total"](s) == 80.0
    assert METRICS["sm_main_total"](s) == 150.0
    assert METRICS["sm_shared_misses"](s) == 500.0
    assert METRICS["sm_remote_fraction"](s) == 0.75
    assert METRICS["mp_bytes"](s) == 4000.0
    assert METRICS["sm_intensity"](s) == 11.0


def test_non_pair_summary_rejected():
    scalars = {"kind": "scalars", "data": {"x": 1.0}}
    with pytest.raises(ValueError, match="needs a pair summary"):
        METRICS["mp_total"](scalars)


def test_missing_phase_rejected():
    s = _pair_summary()
    s["mp"]["phases"] = {"init": {"total": 20.0}}
    with pytest.raises(ValueError, match="no mp phase 'main'"):
        METRICS["mp_main_total"](s)


def test_resolve_metric_suggests():
    with pytest.raises(ValueError, match="did you mean 'sm_total'"):
        resolve_metric("sm_totl")
    assert resolve_metric("mp_total") is METRICS["mp_total"]


def test_resolve_metric_extra_shadows_registry():
    override = lambda s: 42.0
    assert resolve_metric("mp_total", {"mp_total": override}) is override
    assert resolve_metric("custom", {"custom": override}) is override


def test_derive_metrics_preserves_order():
    derived = derive_metrics(_pair_summary(), ("sm_total", "mp_total"))
    assert list(derived) == ["sm_total", "mp_total"]
    assert derived == {"sm_total": 200.0, "mp_total": 100.0}


def test_metric_names_sorted_and_complete():
    names = metric_names()
    assert names == sorted(names)
    assert set(names) == set(METRICS)


def test_metrics_against_a_real_record():
    """End-to-end: registry metrics work on an actual run summary."""
    from repro.runner.api import record_for

    summary = record_for("mse").summary
    derived = derive_metrics(
        summary, ("mp_total", "sm_total", "sm_over_mp", "sm_data_access_share")
    )
    assert derived["mp_total"] > 0
    assert derived["sm_total"] > 0
    assert derived["sm_over_mp"] == pytest.approx(
        derived["sm_total"] / derived["mp_total"], rel=1e-6
    )
    assert 0 <= derived["sm_data_access_share"] <= 1
