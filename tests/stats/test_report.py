"""Formatting tests for paper-style tables."""

from repro.stats.report import (
    format_breakdown,
    format_comparison,
    format_counts,
    human_quantity,
)


def test_human_quantity_paper_styles():
    assert human_quantity(2_400_000) == "2.4M"
    assert human_quantity(23_590) == "23,590"
    assert human_quantity(774) == "774"
    assert human_quantity(1_100_000) == "1.1M"


def test_human_quantity_mega_boundary():
    # Values below one million keep the paper's comma style; the old
    # 1e5 cutoff rendered 100,000..999,999 as "0.1M".."1.0M".
    assert human_quantity(99_999) == "99,999"
    assert human_quantity(100_000) == "100,000"
    assert human_quantity(999_999) == "999,999"
    assert human_quantity(1_000_000) == "1.0M"


def test_breakdown_contains_rows_and_total():
    text = format_breakdown(
        "MSE Message Passing (MSE-MP)",
        [("Computation", 1115.9e6, 0), ("Local Misses", 44.6e6, 0)],
        total=1241.1e6,
        relative=("Relative to Shared Memory", 0.98),
    )
    assert "MSE Message Passing" in text
    assert "Computation" in text
    assert "1115.90" in text
    assert "90%" in text
    assert "Total" in text
    assert "98%" in text


def test_breakdown_zero_total_no_crash():
    text = format_breakdown("Empty", [("Computation", 0, 0)], total=0)
    assert "Computation" in text


def test_breakdown_indents_subcategories():
    text = format_breakdown(
        "T", [("Communication", 100.0e6, 0), ("Lib Comp", 60.0e6, 1)], total=100.0e6
    )
    assert "  Lib Comp" in text


def test_counts_table():
    text = format_counts(
        "MSE-MP counts",
        [("Local Misses", "2.4M", 0), ("Messages sent", "1271", 0),
         ("Data", "0.8M", 1)],
    )
    assert "Local Misses" in text
    assert "  Data" in text


def test_comparison_table():
    text = format_comparison(
        "LCP", ["Synchronous", "Asynchronous"],
        [("Channel writes", ["220", "5,425"])],
    )
    assert "Synchronous" in text
    assert "5,425" in text
