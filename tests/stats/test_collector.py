"""Unit tests for cycle-category accounting."""

import pytest

from repro.stats.categories import MpCat, SmCat
from repro.stats.collector import ProcStats, StatsBoard

LIB_REMAP = {
    "lib": {MpCat.COMPUTE: MpCat.LIB_COMPUTE, MpCat.LOCAL_MISS: MpCat.LIB_MISS}
}


def test_basic_charge_and_total():
    stats = ProcStats(0)
    stats.charge(MpCat.COMPUTE, 100)
    stats.charge(MpCat.COMPUTE, 50)
    stats.charge(MpCat.LOCAL_MISS, 20)
    assert stats.cycles[MpCat.COMPUTE] == 150
    assert stats.total_cycles() == 170


def test_context_remaps_category():
    stats = ProcStats(0, remaps=LIB_REMAP)
    stats.charge(MpCat.COMPUTE, 10)
    with stats.context("lib"):
        stats.charge(MpCat.COMPUTE, 7)
        stats.charge(MpCat.LOCAL_MISS, 3)
    stats.charge(MpCat.COMPUTE, 5)
    assert stats.cycles[MpCat.COMPUTE] == 15
    assert stats.cycles[MpCat.LIB_COMPUTE] == 7
    assert stats.cycles[MpCat.LIB_MISS] == 3


def test_innermost_context_wins():
    remaps = {
        "sync": {SmCat.COMPUTE: SmCat.SYNC_COMPUTE},
        "startup": {SmCat.COMPUTE: SmCat.STARTUP_WAIT},
    }
    stats = ProcStats(0, remaps=remaps)
    with stats.context("sync"):
        with stats.context("startup"):
            stats.charge(SmCat.COMPUTE, 4)
        stats.charge(SmCat.COMPUTE, 2)
    assert stats.cycles[SmCat.STARTUP_WAIT] == 4
    assert stats.cycles[SmCat.SYNC_COMPUTE] == 2


def test_charge_raw_bypasses_context():
    stats = ProcStats(0, remaps=LIB_REMAP)
    with stats.context("lib"):
        stats.charge_raw(MpCat.COMPUTE, 9)
    assert stats.cycles[MpCat.COMPUTE] == 9
    assert MpCat.LIB_COMPUTE not in stats.cycles


def test_unknown_context_rejected():
    stats = ProcStats(0)
    with pytest.raises(KeyError):
        stats.push_context("nope")


def test_pop_context_on_empty_stack_raises_runtime_error():
    stats = ProcStats(3)
    with pytest.raises(RuntimeError, match=r"p3.*no context active"):
        stats.pop_context()
    with pytest.raises(RuntimeError, match=r"'lib'.*no context active"):
        stats.pop_context(expected="lib")


def test_pop_context_names_the_mismatch():
    remaps = {"lib": {}, "sync": {}}
    stats = ProcStats(0, remaps=remaps)
    stats.push_context("lib")
    with pytest.raises(RuntimeError, match=r"expected 'sync'.*innermost context is 'lib'"):
        stats.pop_context(expected="sync")
    # The failed pop must leave the stack intact.
    assert list(stats.active_contexts) == ["lib"]
    stats.pop_context(expected="lib")
    assert not list(stats.active_contexts)


def test_pop_phase_on_empty_stack_raises_runtime_error():
    stats = ProcStats(1)
    with pytest.raises(RuntimeError, match=r"p1.*no phase active"):
        stats.pop_phase()


def test_pop_phase_names_the_mismatch():
    stats = ProcStats(0)
    stats.push_phase("init")
    with pytest.raises(RuntimeError, match=r"expected 'main'.*innermost phase is 'init'"):
        stats.pop_phase(expected="main")
    assert stats.current_phase == "init"


def test_context_and_phase_unwind_in_order_under_exceptions():
    stats = ProcStats(0, remaps={"lib": {}, "sync": {}})
    with pytest.raises(ValueError):
        with stats.phase("main"):
            with stats.context("lib"):
                with stats.context("sync"):
                    raise ValueError("boom")
    # Every level unwound despite the exception — LIFO, fully drained.
    assert not list(stats.active_contexts)
    assert stats.current_phase is None


def test_negative_charge_rejected():
    stats = ProcStats(0)
    with pytest.raises(ValueError):
        stats.charge(MpCat.COMPUTE, -1)


def test_phases_accumulate_in_parallel():
    stats = ProcStats(0)
    with stats.phase("init"):
        stats.charge(MpCat.COMPUTE, 10)
        stats.count("messages_sent", 2)
    with stats.phase("main"):
        stats.charge(MpCat.COMPUTE, 30)
    assert stats.phase_cycles["init"][MpCat.COMPUTE] == 10
    assert stats.phase_cycles["main"][MpCat.COMPUTE] == 30
    assert stats.cycles[MpCat.COMPUTE] == 40
    assert stats.phase_counts["init"]["messages_sent"] == 2


def test_nested_phases_charge_both():
    stats = ProcStats(0)
    with stats.phase("whole"):
        with stats.phase("inner"):
            stats.charge(MpCat.COMPUTE, 5)
    assert stats.phase_cycles["whole"][MpCat.COMPUTE] == 5
    assert stats.phase_cycles["inner"][MpCat.COMPUTE] == 5


def test_board_means():
    a, b = ProcStats(0), ProcStats(1)
    a.charge(MpCat.COMPUTE, 100)
    b.charge(MpCat.COMPUTE, 200)
    a.count("messages_sent", 4)
    board = StatsBoard([a, b])
    assert board.mean_cycles(MpCat.COMPUTE) == 150
    assert board.mean_total() == 150
    assert board.mean_count("messages_sent") == 2
    assert board.total_count("messages_sent") == 4


def test_board_phase_means():
    a, b = ProcStats(0), ProcStats(1)
    with a.phase("main"):
        a.charge(MpCat.COMPUTE, 10)
    with b.phase("main"):
        b.charge(MpCat.COMPUTE, 30)
    board = StatsBoard([a, b])
    assert board.mean_cycles(MpCat.COMPUTE, phase="main") == 20
    assert board.mean_total(phase="main") == 20


def test_board_requires_processors():
    with pytest.raises(ValueError):
        StatsBoard([])


def test_categories_listing():
    a = ProcStats(0)
    a.charge(MpCat.COMPUTE, 1)
    a.charge(MpCat.BARRIER, 1)
    board = StatsBoard([a])
    assert board.categories() == [MpCat.COMPUTE, MpCat.BARRIER]
