"""`repro trace` CLI: emission, cache attachment, re-render without re-run."""

import json

import pytest

from repro import cli
from repro.runner.api import resolve_config
from repro.runner.cache import ResultCache
from repro.trace.chrome import validate_chrome_trace
from repro.trace.timeline import render_timeline


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    directory = tmp_path / "cache"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(directory))
    return directory


def test_trace_unknown_experiment_fails_fast(cache_dir, capsys):
    assert cli.main(["trace", "no-such-experiment"]) == 2
    assert "no-such-experiment" in capsys.readouterr().err


def test_trace_emits_valid_json_and_attaches_to_record(cache_dir, capsys):
    assert cli.main(["trace", "validation"]) == 0
    out = capsys.readouterr().out
    assert "trace:" in out

    record = ResultCache().load(resolve_config("validation"))
    assert record is not None
    assert record.trace_path
    doc = json.loads(open(record.trace_path).read())
    assert validate_chrome_trace(doc) == []
    assert doc["otherData"]["experiment"] == "validation"

    timeline = render_timeline(doc)
    assert "machine" in timeline and "Total" in timeline


def test_trace_rerenders_from_cache_without_resimulating(cache_dir, capsys):
    assert cli.main(["trace", "validation"]) == 0
    capsys.readouterr()
    assert cli.main(["trace", "validation"]) == 0
    out = capsys.readouterr().out
    assert "cached; --force re-simulates" in out


def test_trace_out_and_procs_options(cache_dir, tmp_path, capsys):
    out_path = tmp_path / "t.json"
    assert cli.main(
        ["trace", "validation", "--out", str(out_path), "--procs", "0", "--max-events", "500"]
    ) == 0
    doc = json.loads(out_path.read_text())
    assert validate_chrome_trace(doc) == []
    cycle_tids = {
        e["tid"]
        for e in doc["traceEvents"]
        if e["ph"] == "X" and e.get("cat") == "cycles"
    }
    assert cycle_tids <= {0}
    # A sliced trace must not be attached to the cached record.
    record = ResultCache().load(resolve_config("validation"))
    assert record is None


def test_parse_procs_accepts_ranges_and_lists():
    assert cli._parse_procs("0-3") == [0, 1, 2, 3]
    assert cli._parse_procs("0,2,5-6") == [0, 2, 5, 6]
    with pytest.raises(ValueError):
        cli._parse_procs(",")
