"""Chrome Trace Event export: structure, round-trip, validation."""

import json

import pytest

from repro import trace
from repro.core.experiments import EXPERIMENTS
from repro.trace.chrome import ALLOWED_PHASES, to_chrome, validate_chrome_trace

MSE_SMALL = {"procs": 4, "app": {"bodies": 16, "elements_per_body": 4, "iterations": 3}}


@pytest.fixture(scope="module")
def mse_doc():
    spec = EXPERIMENTS["mse"]
    tracer = trace.Tracer()
    with trace.tracing(tracer):
        spec.runner(spec.config.with_overrides(MSE_SMALL))
    return to_chrome(tracer, meta={"experiment": "mse"})


def test_document_round_trips_through_json(mse_doc):
    text = json.dumps(mse_doc)
    assert json.loads(text) == mse_doc


def test_validator_accepts_emitted_trace(mse_doc):
    assert validate_chrome_trace(mse_doc) == []


def test_covers_required_phases(mse_doc):
    phases = {event["ph"] for event in mse_doc["traceEvents"]}
    # The acceptance phases plus instants, metadata, and counters.
    assert {"X", "B", "E", "s", "f"} <= phases
    assert phases <= ALLOWED_PHASES


def test_flow_pairs_share_ids(mse_doc):
    starts = {e["id"] for e in mse_doc["traceEvents"] if e["ph"] == "s"}
    ends = {e["id"] for e in mse_doc["traceEvents"] if e["ph"] == "f"}
    assert starts and starts == ends


def test_metadata_names_every_cycle_track(mse_doc):
    named = {
        (e["pid"], e["tid"])
        for e in mse_doc["traceEvents"]
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    used = {
        (e["pid"], e["tid"])
        for e in mse_doc["traceEvents"]
        if e["ph"] == "X" and e.get("cat") == "cycles"
    }
    assert used <= named


def test_other_data_summarizes_machines(mse_doc):
    other = mse_doc["otherData"]
    assert other["experiment"] == "mse"
    assert other["dropped_events"] == 0
    kinds = {m["kind"] for m in other["machines"]}
    assert kinds == {"mp", "sm"}
    for machine in other["machines"]:
        assert machine["elapsed_cycles"] > 0
        assert machine["events_executed"] > 0


def test_validator_rejects_malformed_documents():
    assert validate_chrome_trace([]) != []
    assert validate_chrome_trace({}) != []
    assert validate_chrome_trace({"traceEvents": [{"ph": "Z"}]}) != []
    assert validate_chrome_trace(
        {"traceEvents": [{"ph": "X", "name": "a", "pid": 0, "tid": 0, "ts": 0}]}
    ) != []  # missing dur
    assert validate_chrome_trace(
        {"traceEvents": [{"ph": "X", "name": "a", "pid": 0, "tid": 0, "ts": 0, "dur": -1}]}
    ) != []  # negative dur


def test_validator_rejects_unbalanced_spans_and_orphan_flows():
    b = {"ph": "B", "name": "p", "pid": 0, "tid": 0, "ts": 0}
    e = {"ph": "E", "pid": 0, "tid": 0, "ts": 5}
    assert validate_chrome_trace({"traceEvents": [b, e]}) == []
    assert validate_chrome_trace({"traceEvents": [e]}) != []  # E without B
    assert validate_chrome_trace({"traceEvents": [b]}) != []  # unclosed B
    mismatched = dict(e, name="other")
    assert validate_chrome_trace({"traceEvents": [b, mismatched]}) != []
    orphan_f = {"ph": "f", "id": "9", "name": "m", "pid": 0, "tid": 0, "ts": 1}
    assert validate_chrome_trace({"traceEvents": [orphan_f]}) != []
