"""Tracer core: install semantics, invariants, golden non-interference.

The two load-bearing guarantees:

* per-processor per-category interval sums equal the aggregate
  ``ProcStats`` tables exactly (the tracer never invents or loses a
  cycle), and
* running *under* the tracer leaves every golden cycle/event count
  bit-identical — observation must not perturb the simulation.
"""

import pytest

from repro import trace
from repro.core.experiments import EXPERIMENTS

MSE_SMALL = {"procs": 4, "app": {"bodies": 16, "elements_per_body": 4, "iterations": 3}}

MSE_GOLDEN = {
    "mp_total": 116528.0,
    "sm_total": 146983.0,
    "mp_elapsed": 116528,
    "sm_elapsed": 146983,
    "mp_events": 1390,
    "sm_events": 1916,
}


def _run_mse_traced(**tracer_kwargs):
    spec = EXPERIMENTS["mse"]
    tracer = trace.Tracer(**tracer_kwargs)
    with trace.tracing(tracer):
        pair = spec.runner(spec.config.with_overrides(MSE_SMALL))
    return tracer, pair


def _label(category):
    return getattr(category, "value", None) or str(category)


def test_install_uninstall_lifecycle():
    assert trace.active() is trace.NULL
    tracer = trace.Tracer()
    trace.install(tracer)
    try:
        assert trace.active() is tracer
        with pytest.raises(RuntimeError):
            trace.install(trace.Tracer())
    finally:
        trace.uninstall()
    assert trace.active() is trace.NULL


def test_tracing_context_manager_uninstalls_on_error():
    with pytest.raises(ValueError):
        with trace.tracing():
            raise ValueError("boom")
    assert trace.active() is trace.NULL


def test_null_tracer_hooks_are_noops():
    trace.NULL.attach_mp(object())
    trace.NULL.attach_sm(object())
    assert not trace.NULL.enabled


def test_interval_sums_equal_aggregate_totals():
    tracer, pair = _run_mse_traced()
    kinds = [m["kind"] for m in tracer.machines]
    assert "mp" in kinds and "sm" in kinds
    for mi, machine in enumerate(tracer.machines):
        result = pair.mp_result if machine["kind"] == "mp" else pair.sm_result
        totals = tracer.interval_totals(mi)
        for pid, proc in enumerate(result.board.procs):
            aggregate = {_label(cat): cycles for cat, cycles in proc.cycles.items()}
            assert totals.get(pid, {}) == aggregate, (machine["kind"], pid)


def test_tracing_does_not_perturb_golden_counts():
    _tracer, pair = _run_mse_traced()
    observed = {
        "mp_total": pair.mp_result.board.mean_total(),
        "sm_total": pair.sm_result.board.mean_total(),
        "mp_elapsed": pair.mp_result.elapsed_cycles,
        "sm_elapsed": pair.sm_result.elapsed_cycles,
        "mp_events": pair.mp_result.machine.engine.events_executed,
        "sm_events": pair.sm_result.machine.engine.events_executed,
    }
    assert observed == MSE_GOLDEN


def test_mp_flows_and_sm_protocol_recorded():
    tracer, _pair = _run_mse_traced()
    by_kind = {m["kind"]: mi for mi, m in enumerate(tracer.machines)}
    mp_flows = [f for f in tracer.flows if f[0] == by_kind["mp"]]
    sm_flows = [f for f in tracer.flows if f[0] == by_kind["sm"]]
    assert mp_flows and sm_flows
    # MP flows land after the network latency.
    for _mi, _name, _src, _dst, t0, t1, args in mp_flows:
        assert t1 > t0
        assert args["packets"] >= 1
    # Directory arrivals were observed as instants on the SM machine.
    assert any(inst[0] == by_kind["sm"] for inst in tracer.instants)


def test_intervals_are_gap_free_per_processor():
    """The cursor anchoring yields a contiguous per-proc timeline."""
    tracer, _pair = _run_mse_traced()
    for mi in range(len(tracer.machines)):
        spans = {}
        for rec_mi, pid, _label_, _phase, start, dur in tracer.intervals:
            if rec_mi == mi:
                spans.setdefault(pid, []).append((start, start + dur))
        for pid, intervals in spans.items():
            covered = 0
            cursor = 0
            for start, end in sorted(intervals):
                covered += end - max(start, cursor) if end > cursor else 0
                cursor = max(cursor, end)
            # Covered timeline == sum of durations: no overlaps escaped
            # past the cursor, so the lanes tile without double-counting.
            total = sum(end - start for start, end in intervals)
            assert covered <= total
            assert cursor <= tracer.machines[mi]["engine"].now


def test_procs_filter_restricts_records():
    tracer, _pair = _run_mse_traced(procs=[0])
    assert {rec[1] for rec in tracer.intervals} == {0}
    for mi, tid, _name, _ph, _ts in tracer.marks:
        assert tid % 1000 == 0  # only p0 tracks


def test_max_events_caps_and_counts_drops():
    tracer, _pair = _run_mse_traced(max_events=100)
    stored = (
        len(tracer.intervals)
        + len(tracer.flows)
        + len(tracer.instants)
        + len(tracer.counters)
    )
    assert stored == 100
    assert tracer.dropped > 0
    # Begin/end marks are exempt so spans always balance.
    assert len(tracer.marks) > 0


def test_engine_pending_counter_sampled():
    tracer, _pair = _run_mse_traced(counter_interval=64)
    pending = [c for c in tracer.counters if c[2] == "engine.pending"]
    assert pending
    for _mi, _ts, _name, _series, value in pending:
        assert value >= 0


def test_api_trace_for_returns_validated_document():
    from repro import api

    traced = api.trace_for("validation")
    assert traced.exp_id == "validation"
    assert traced.errors == []
    assert traced.document["traceEvents"]
    assert traced.config.exp_id == "validation"
    assert traced.elapsed_seconds > 0
    kinds = {m["kind"] for m in traced.document["otherData"]["machines"]}
    assert {"mp", "sm"} <= kinds
